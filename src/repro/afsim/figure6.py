"""Regenerating Figure 6 — the paper's entire quantitative evaluation.

Six panels: {remote source, on-disk cache, in-memory cache} × {Read,
Write}, each with the Process(-with-control), Thread and DLL(-only)
curves over block sizes 8..2048, 1000 calls per point, plus the
direct-access baseline the text describes as "indistinguishable from
the DLL-only case".

Run as a module for the tables::

    python -m repro.afsim.figure6 [--panel a|b|c|all] [--op read|write|both]
                                  [--calls N] [--check]

``--check`` additionally verifies the paper's qualitative claims
(ordering, monotonicity, DLL≈baseline) and exits nonzero on violation.
"""

from __future__ import annotations

import argparse
import sys

from repro.afsim.workload import WorkloadResult, measure_point
from repro.ntos.costs import CostModel

__all__ = ["PANELS", "BLOCK_SIZES", "FIG6_STRATEGIES", "run_panel",
           "run_figure6", "check_claims", "format_panel", "main"]

#: Panel key -> (caching path, the paper's caption).
PANELS = {
    "a": ("network", "Sentinel uses a remote source"),
    "b": ("disk", "Sentinel uses a local on-disk cache"),
    "c": ("memory", "Sentinel uses an in-memory cache"),
}

#: The x axis of every panel.
BLOCK_SIZES = (8, 32, 128, 512, 2048)

#: Curve key -> (measured strategy, the paper's legend label).
FIG6_STRATEGIES = {
    "process": ("process-control", "Process"),
    "thread": ("thread", "Thread"),
    "dll": ("dll", "DLL"),
}

#: Approximate endpoints read off the paper's printed axes — used only
#: for calibration sanity reporting, never asserted exactly.
PAPER_TOPS_US = {
    ("a", "read"): 560.0, ("a", "write"): 320.0,
    ("b", "read"): 720.0, ("b", "write"): 320.0,
    ("c", "read"): 210.0, ("c", "write"): 210.0,
}


def run_panel(panel: str, op: str, calls: int = 1000,
              costs: CostModel | None = None,
              block_sizes=BLOCK_SIZES,
              include_baseline: bool = True) -> dict[str, dict[int, WorkloadResult]]:
    """All curves of one panel: {curve: {block_size: result}}."""
    path, _ = PANELS[panel]
    series: dict[str, dict[int, WorkloadResult]] = {}
    for curve, (strategy, _) in FIG6_STRATEGIES.items():
        series[curve] = {
            block: measure_point(strategy, path, op, block, calls=calls,
                                 costs=costs)
            for block in block_sizes
        }
    if include_baseline:
        series["baseline"] = {
            block: measure_point("baseline", path, op, block, calls=calls,
                                 costs=costs)
            for block in block_sizes
        }
    return series


def run_figure6(calls: int = 1000, costs: CostModel | None = None,
                panels=("a", "b", "c"), ops=("read", "write"),
                block_sizes=BLOCK_SIZES):
    """The whole figure: {panel: {op: {curve: {block: result}}}}."""
    return {
        panel: {op: run_panel(panel, op, calls=calls, costs=costs,
                              block_sizes=block_sizes)
                for op in ops}
        for panel in panels
    }


# ---------------------------------------------------------------------------
# Qualitative claims (what the reproduction must preserve)
# ---------------------------------------------------------------------------

def check_claims(series: dict[str, dict[int, WorkloadResult]],
                 panel: str, op: str) -> list[str]:
    """Return a list of violated claims (empty = all hold)."""
    problems = []
    blocks = sorted(next(iter(series.values())))
    largest = blocks[-1]

    def us(curve, block):
        return series[curve][block].per_op_us

    # claim 1: ordering Process > Thread > DLL at every block size
    for block in blocks:
        if not us("process", block) > us("thread", block) > us("dll", block):
            problems.append(
                f"{panel}/{op}@{block}: ordering violated "
                f"(process={us('process', block):.1f}, "
                f"thread={us('thread', block):.1f}, "
                f"dll={us('dll', block):.1f})"
            )
    # claim 2: DLL ≈ baseline ("indistinguishable") — 15% relative with
    # a small absolute floor (sub-microsecond points are below what the
    # paper's plots could even resolve)
    if "baseline" in series:
        for block in blocks:
            dll, base = us("dll", block), us("baseline", block)
            if abs(dll - base) > 3.0 + 0.15 * base:
                problems.append(
                    f"{panel}/{op}@{block}: DLL ({dll:.1f}) deviates from "
                    f"baseline ({base:.1f}) beyond tolerance"
                )
    # claim 3: per-op cost grows with block size for every curve
    for curve in series:
        values = [us(curve, block) for block in blocks]
        if not all(b >= a for a, b in zip(values, values[1:])):
            problems.append(f"{panel}/{op}: {curve} not monotone in block size")
    # claim 4 (reads only): the process curve is dominated by round-trip
    # latency, so it sits well above thread at the small end too
    if op == "read" and us("process", blocks[0]) < 1.1 * us("thread", blocks[0]):
        problems.append(f"{panel}/read: process curve not clearly above thread")
    _ = largest
    return problems


# ---------------------------------------------------------------------------
# Presentation
# ---------------------------------------------------------------------------

def format_panel(series: dict[str, dict[int, WorkloadResult]],
                 panel: str, op: str) -> str:
    """Render one panel the way the paper's plots tabulate."""
    path, caption = PANELS[panel]
    blocks = sorted(next(iter(series.values())))
    lines = [
        f"Figure 6({panel}) {op.capitalize()} — {caption} [{path} path]",
        f"{'block size (B)':>16} " + " ".join(f"{block:>10}" for block in blocks),
    ]
    order = ["process", "thread", "dll"] + (
        ["baseline"] if "baseline" in series else [])
    labels = {"process": "Process", "thread": "Thread", "dll": "DLL",
              "baseline": "(baseline)"}
    for curve in order:
        row = " ".join(f"{series[curve][block].per_op_us:>10.1f}"
                       for block in blocks)
        lines.append(f"{labels[curve]:>16} {row}")
    top = PAPER_TOPS_US.get((panel, op))
    if top is not None:
        measured_top = series["process"][blocks[-1]].per_op_us
        lines.append(f"{'paper y-max':>16} {top:>10.1f}   "
                     f"(measured process@{blocks[-1]}: {measured_top:.1f} µs)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.afsim.figure6",
        description="Regenerate the paper's Figure 6 on the simulated testbed.",
    )
    parser.add_argument("--panel", choices=("a", "b", "c", "all"),
                        default="all")
    parser.add_argument("--op", choices=("read", "write", "both"),
                        default="both")
    parser.add_argument("--calls", type=int, default=1000,
                        help="calls per point (paper: 1000)")
    parser.add_argument("--check", action="store_true",
                        help="verify the qualitative claims; exit 1 on failure")
    parser.add_argument("--plot", action="store_true",
                        help="also render each panel as an ASCII plot")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="also write the full results as JSON to this "
                             "path ('-' for stdout)")
    args = parser.parse_args(argv)

    panels = ("a", "b", "c") if args.panel == "all" else (args.panel,)
    ops = ("read", "write") if args.op == "both" else (args.op,)
    failures: list[str] = []
    collected: dict = {}
    for panel in panels:
        for op in ops:
            series = run_panel(panel, op, calls=args.calls)
            collected.setdefault(panel, {})[op] = series
            print(format_panel(series, panel, op))
            if args.plot:
                from repro.afsim.plot import render_ascii_panel

                print()
                print(render_ascii_panel(series, panel, op))
            print()
            if args.check:
                problems = check_claims(series, panel, op)
                failures.extend(problems)
                for problem in problems:
                    print(f"  CLAIM VIOLATED: {problem}")
    if args.json_path:
        _write_json(collected, args.json_path, args.calls)
    if args.check:
        status = "ALL CLAIMS HOLD" if not failures else \
            f"{len(failures)} CLAIM VIOLATION(S)"
        print(status)
        return 1 if failures else 0
    return 0


def _write_json(collected, json_path: str, calls: int) -> None:
    """Serialize the measured series for downstream plotting tools."""
    import json as json_module

    payload = {
        "paper": "Active Files (ICDCS 2000), Figure 6",
        "calls_per_point": calls,
        "unit": "virtual microseconds per call",
        "panels": {
            panel: {
                op: {
                    curve: {str(block): round(result.per_op_us, 3)
                            for block, result in points.items()}
                    for curve, points in series.items()
                }
                for op, series in ops_map.items()
            }
            for panel, ops_map in collected.items()
        },
    }
    text = json_module.dumps(payload, indent=2, sort_keys=True)
    if json_path == "-":
        print(text)
    else:
        with open(json_path, "w", encoding="utf-8") as stream:
            stream.write(text + "\n")


if __name__ == "__main__":
    sys.exit(main())
