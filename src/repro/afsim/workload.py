"""The Section 6 measurement workload.

"Figure 6 shows measurements for an application that reads and writes
fixed-size blocks from an active file (we instrumented the application
by intercepting the open/read/write/close calls and handling them as
described before).  Our measurements are for a variety of block sizes,
and time 1000 calls of each."

:func:`measure_point` builds one fresh simulated machine (kernel,
filesystem, NIC), injects the stub DLL into an application process,
runs the fixed-block loop against one strategy on one caching path,
and reports virtual microseconds per call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.afsim.backings import make_backing
from repro.afsim.sessions import open_session
from repro.afsim.stubs import ActiveFileRuntime
from repro.errors import SimulationError
from repro.ntos.costs import CostModel
from repro.ntos.fs import NTFileSystem
from repro.ntos.kernel import Kernel
from repro.ntos.win32 import Win32

__all__ = ["WorkloadResult", "measure_point", "measure_open_cost"]

#: Strategies measured in Figure 6, plus the §6 baseline and the §4.1
#: simple process strategy (for ablations).
MEASURABLE = ("process-control", "thread", "dll", "process", "baseline")


@dataclass(frozen=True)
class WorkloadResult:
    """One point of the evaluation."""

    strategy: str
    path: str
    op: str
    block_size: int
    calls: int
    total_us: float
    per_op_us: float
    context_switches: int
    syscalls: int
    cpu_by_process: dict


def measure_point(strategy: str, path: str, op: str, block_size: int,
                  calls: int = 1000, costs: CostModel | None = None,
                  **session_options) -> WorkloadResult:
    """Run one (strategy, path, op, block size) cell and time it."""
    if strategy not in MEASURABLE:
        raise SimulationError(
            f"unknown strategy {strategy!r}; known: {MEASURABLE}"
        )
    if op not in ("read", "write"):
        raise SimulationError(f"op must be 'read' or 'write', not {op!r}")

    kernel = Kernel(costs)
    fs = NTFileSystem(kernel)
    # the active file on disk: data part + active part as NTFS streams
    fs.create("data.af", b"")
    fs.create("data.af:active", b"sentinel-image")
    app_process = kernel.create_process("app")
    win32 = Win32(kernel, app_process, fs)

    measured = {}

    if strategy == "baseline":
        backing = make_backing(kernel, path, fs=fs)

        def app_main() -> None:
            payload = b"\x00" * block_size
            start = kernel.now
            for index in range(calls):
                if op == "read":
                    backing.read(index * block_size, block_size)
                else:
                    backing.write(index * block_size, payload)
            measured["total"] = kernel.now - start
            backing.settle()
    else:
        def session_factory(name: str):
            backing = make_backing(kernel, path, fs=fs)
            return open_session(strategy, kernel, app_process, backing,
                                **session_options)

        runtime = ActiveFileRuntime(kernel, win32, session_factory)
        runtime.install()

        def app_main() -> None:
            handle = win32.CreateFile("data.af")
            payload = b"\x00" * block_size
            start = kernel.now
            for _ in range(calls):
                if op == "read":
                    win32.ReadFile(handle, block_size)
                else:
                    win32.WriteFile(handle, payload)
            measured["total"] = kernel.now - start
            win32.CloseHandle(handle)

    kernel.create_thread(app_process, app_main, name="app:main")
    kernel.run()
    total = measured["total"]
    return WorkloadResult(
        strategy=strategy, path=path, op=op, block_size=block_size,
        calls=calls, total_us=total, per_op_us=total / calls,
        context_switches=kernel.context_switches, syscalls=kernel.syscalls,
        cpu_by_process=kernel.cpu_by_process(),
    )


def measure_open_cost(strategy: str, path: str = "memory",
                      costs: CostModel | None = None) -> float:
    """Supplementary experiment: virtual µs from CreateFile to handle.

    Not a paper figure — the paper only notes that sentinel launch
    happens at open — but the comparison quantifies the lifecycle side
    of the strategy trade-off: spawning a sentinel *process* (pipes,
    process creation) versus a *thread* (events, shared section) versus
    nothing (DLL-only).
    """
    if strategy not in MEASURABLE or strategy == "baseline":
        raise SimulationError(
            f"open cost is defined for sentinel strategies, not {strategy!r}"
        )
    kernel = Kernel(costs)
    fs = NTFileSystem(kernel)
    fs.create("data.af", b"")
    fs.create("data.af:active", b"sentinel-image")
    app_process = kernel.create_process("app")
    win32 = Win32(kernel, app_process, fs)

    def session_factory(name: str):
        backing = make_backing(kernel, path, fs=fs)
        return open_session(strategy, kernel, app_process, backing)

    runtime = ActiveFileRuntime(kernel, win32, session_factory)
    runtime.install()
    measured = {}

    def app_main() -> None:
        start = kernel.now
        handle = win32.CreateFile("data.af")
        measured["open"] = kernel.now - start
        win32.CloseHandle(handle)

    kernel.create_thread(app_process, app_main, name="app:main")
    kernel.run()
    return measured["open"]
