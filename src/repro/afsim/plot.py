"""ASCII rendering of Figure 6 panels.

The paper presents its evaluation as six small line plots.  This module
renders the regenerated series in the same visual grammar — per-op µs
on the y axis, block size (log-spaced, as printed) on the x axis, one
glyph per curve — so the reproduction can be eyeballed against the
paper without any plotting dependency.
"""

from __future__ import annotations

__all__ = ["render_ascii_panel"]

#: Curve glyphs, highest curve first so overlaps keep the slower one.
GLYPHS = {
    "process": "P",
    "thread": "T",
    "dll": "D",
    "baseline": ".",
}


def render_ascii_panel(series, panel: str, op: str,
                       width: int = 64, height: int = 18) -> str:
    """Render one panel's curves into a text plot."""
    from repro.afsim.figure6 import PANELS

    path, caption = PANELS[panel]
    blocks = sorted(next(iter(series.values())))
    curves = {name: [points[block].per_op_us for block in blocks]
              for name, points in series.items()}
    y_max = max(max(values) for values in curves.values()) or 1.0
    y_max *= 1.05

    # x positions: evenly spaced per sample, like the paper's category axis
    if len(blocks) == 1:
        columns = [width // 2]
    else:
        columns = [round(index * (width - 1) / (len(blocks) - 1))
                   for index in range(len(blocks))]

    grid = [[" "] * width for _ in range(height)]
    for name in ("baseline", "dll", "thread", "process"):
        if name not in curves:
            continue
        glyph = GLYPHS.get(name, "?")
        previous = None
        for column, value in zip(columns, curves[name]):
            row = height - 1 - int(value / y_max * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[row][column] = glyph
            if previous is not None:
                # linear interpolation between sample columns
                prev_col, prev_row = previous
                span = column - prev_col
                for step in range(1, span):
                    mid_row = round(prev_row + (row - prev_row) * step / span)
                    if grid[mid_row][prev_col + step] == " ":
                        grid[mid_row][prev_col + step] = "·"
            previous = (column, row)

    lines = [f"Figure 6({panel}) {op.capitalize()} — {caption}",
             f"{y_max:8.0f} µs ┐"]
    for row in grid:
        lines.append(" " * 11 + "│" + "".join(row))
    axis = [" "] * width
    labels = []
    for column, block in zip(columns, blocks):
        labels.append((column, str(block)))
        axis[column] = "┬"
    lines.append(" " * 10 + "0└" + "".join(axis))
    label_line = [" "] * (width + 12)
    for column, text in labels:
        start = min(column + 12, len(label_line) - len(text))
        for index, char in enumerate(text):
            label_line[start + index] = char
    lines.append("".join(label_line).rstrip() + "  (block size, B)")
    legend = "  ".join(f"{glyph}={name}" for name, glyph in GLYPHS.items()
                       if name in curves)
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
