"""A minimal SMTP-style outbound mail service.

Backs the paper's outbox example: "the outbox-file can be programmed to
send email to a particular recipient, every time some data is written to
it", extended so "the sentinel process parses the data written to the
file to extract the 'To' addresses and send the data to each recipient".

Delivery routing: recipients whose domain matches a registered
:class:`~repro.net.pop3.Pop3Server` are delivered there; everything else
lands in the relay's sent-mail log (so tests can observe it).
"""

from __future__ import annotations

import threading

from repro.net.message import Request, Response
from repro.net.pop3 import MailMessage, Pop3Server
from repro.net.service import Service

__all__ = ["SmtpServer", "parse_rfc822"]


def parse_rfc822(raw: bytes) -> MailMessage:
    """Parse the minimal RFC822-ish format produced by the mail sentinels."""
    text = raw.decode("utf-8", errors="replace")
    head, _, body = text.partition("\n\n")
    if "\r\n\r\n" in text:
        head, _, body = text.partition("\r\n\r\n")
    headers: dict[str, str] = {}
    for line in head.splitlines():
        if ":" in line:
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
    return MailMessage(
        sender=headers.get("from", ""),
        recipient=headers.get("to", ""),
        subject=headers.get("subject", ""),
        body=body.strip("\r\n"),
    )


class SmtpServer(Service):
    """An in-memory SMTP-like relay."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._domains: dict[str, Pop3Server] = {}
        self.sent: list[MailMessage] = []

    def register_domain(self, domain: str, pop3: Pop3Server) -> None:
        """Route mail for ``user@domain`` into *pop3* mailboxes."""
        with self._lock:
            self._domains[domain] = pop3

    # -- protocol ------------------------------------------------------------

    def op_SEND(self, request: Request) -> Response:
        """Send one message.

        Fields: ``sender``, ``recipients`` (list).  Payload: RFC822-ish
        message text.  Returns per-recipient delivery status.
        """
        sender = request.fields.get("sender", "")
        recipients = request.fields.get("recipients") or []
        if not recipients:
            return Response.failure("no recipients")
        parsed = parse_rfc822(request.payload)
        if sender:
            parsed.sender = sender
        statuses: dict[str, str] = {}
        with self._lock:
            for recipient in recipients:
                message = MailMessage(
                    sender=parsed.sender,
                    recipient=recipient,
                    subject=parsed.subject,
                    body=parsed.body,
                )
                domain = recipient.split("@", 1)[1] if "@" in recipient else ""
                pop3 = self._domains.get(domain)
                if pop3 is not None and pop3.deliver(message):
                    statuses[recipient] = "delivered"
                else:
                    statuses[recipient] = "relayed"
                self.sent.append(message)
        return Response(fields={"statuses": statuses})
