"""Network addresses for the simulated fabric.

An address is ``host:port`` with an optional ``scheme://`` prefix and
``/path`` suffix, e.g. ``ftp://files.example:21/pub/data.txt``.  The
scheme is advisory (services define their own protocol); the path is
carried for URL-style sources such as the HTTP and FTP servers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError

__all__ = ["Address"]


@dataclass(frozen=True, order=True)
class Address:
    """An endpoint on the simulated network."""

    host: str
    port: int = 0
    scheme: str = ""

    def __post_init__(self) -> None:
        if not self.host:
            raise AddressError("address host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise AddressError(f"port out of range: {self.port}")

    def __str__(self) -> str:
        prefix = f"{self.scheme}://" if self.scheme else ""
        return f"{prefix}{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> tuple["Address", str]:
        """Parse ``[scheme://]host[:port][/path]``.

        Returns the address and the path remainder (``""`` if none).
        """
        scheme = ""
        rest = text
        if "://" in rest:
            scheme, rest = rest.split("://", 1)
        path = ""
        if "/" in rest:
            rest, path = rest.split("/", 1)
            path = "/" + path
        port = 0
        host = rest
        if ":" in rest:
            host, port_text = rest.rsplit(":", 1)
            try:
                port = int(port_text)
            except ValueError as exc:
                raise AddressError(f"bad port in address {text!r}") from exc
        if not host:
            raise AddressError(f"no host in address {text!r}")
        return cls(host=host, port=port, scheme=scheme), path
