"""A minimal FTP-style file service with authentication.

The paper motivates active files with "the illusion of accessing a
single file even though the file data is physically located on multiple
remote sites with varied authentication and access-control policies".
This server supplies the authentication half: sessions must LOGIN with a
user/password pair before transfer commands are accepted, and per-user
access control restricts which path prefixes each account may touch.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.net.message import Request, Response
from repro.net.service import Service
from repro.util.naming import monotonic_name

__all__ = ["FtpServer", "FtpAccount"]


@dataclass
class FtpAccount:
    """One FTP account: password plus readable/writable path prefixes."""

    password: str
    read_prefixes: tuple[str, ...] = ("",)
    write_prefixes: tuple[str, ...] = ()


@dataclass
class _Session:
    user: str
    account: FtpAccount


def _allowed(prefixes: tuple[str, ...], path: str) -> bool:
    return any(path.startswith(prefix) for prefix in prefixes)


class FtpServer(Service):
    """An in-memory FTP-like server with LOGIN/RETR/STOR/SIZE/LIST/QUIT."""

    def __init__(self, accounts: dict[str, FtpAccount] | None = None,
                 files: dict[str, bytes] | None = None) -> None:
        self._lock = threading.Lock()
        self._accounts = dict(accounts or {"anonymous": FtpAccount(password="")})
        self._files: dict[str, bytearray] = {
            path: bytearray(body) for path, body in (files or {}).items()
        }
        self._sessions: dict[str, _Session] = {}

    def put_file(self, path: str, body: bytes) -> None:
        with self._lock:
            self._files[path] = bytearray(body)

    def get_file(self, path: str) -> bytes:
        with self._lock:
            return bytes(self._files[path])

    def _session(self, request: Request) -> _Session | None:
        token = request.fields.get("session", "")
        with self._lock:
            return self._sessions.get(token)

    # -- protocol ------------------------------------------------------------

    def op_LOGIN(self, request: Request) -> Response:
        user = request.fields.get("user", "")
        password = request.fields.get("password", "")
        with self._lock:
            account = self._accounts.get(user)
            if account is None or account.password != password:
                return Response.failure("530 Login incorrect")
            token = monotonic_name("ftp-session")
            self._sessions[token] = _Session(user=user, account=account)
        return Response(fields={"session": token})

    def op_QUIT(self, request: Request) -> Response:
        token = request.fields.get("session", "")
        with self._lock:
            self._sessions.pop(token, None)
        return Response()

    def op_RETR(self, request: Request) -> Response:
        session = self._session(request)
        if session is None:
            return Response.failure("530 Not logged in")
        path = request.fields.get("path", "")
        if not _allowed(session.account.read_prefixes, path):
            return Response.failure(f"550 Permission denied: {path}")
        offset = int(request.fields.get("offset", 0))
        size = request.fields.get("size")
        with self._lock:
            body = self._files.get(path)
            if body is None:
                return Response.failure(f"550 No such file: {path}")
            end = len(body) if size is None else offset + int(size)
            return Response(payload=bytes(body[offset:end]),
                            fields={"size": len(body)})

    def op_STOR(self, request: Request) -> Response:
        session = self._session(request)
        if session is None:
            return Response.failure("530 Not logged in")
        path = request.fields.get("path", "")
        if not _allowed(session.account.write_prefixes, path):
            return Response.failure(f"550 Permission denied: {path}")
        append = bool(request.fields.get("append", False))
        with self._lock:
            if append and path in self._files:
                self._files[path].extend(request.payload)
            else:
                self._files[path] = bytearray(request.payload)
        return Response(fields={"stored": len(request.payload)})

    def op_SIZE(self, request: Request) -> Response:
        session = self._session(request)
        if session is None:
            return Response.failure("530 Not logged in")
        path = request.fields.get("path", "")
        if not _allowed(session.account.read_prefixes, path):
            return Response.failure(f"550 Permission denied: {path}")
        with self._lock:
            body = self._files.get(path)
            if body is None:
                return Response.failure(f"550 No such file: {path}")
            return Response(fields={"size": len(body)})

    def op_LIST(self, request: Request) -> Response:
        session = self._session(request)
        if session is None:
            return Response.failure("530 Not logged in")
        prefix = request.fields.get("prefix", "")
        with self._lock:
            names = sorted(
                name for name in self._files
                if name.startswith(prefix)
                and _allowed(session.account.read_prefixes, name)
            )
        return Response(fields={"names": names})
