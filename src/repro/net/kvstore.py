"""A key-value database service.

The paper lists "databases" among the sources a sentinel can aggregate
from, and motivates the search example: "an end application that
searches through a collection of distributed databases cannot see
changes in these databases ... when an intermediary first aggregates
data".  This store provides versioned records and compare-and-swap so
aggregating sentinels can both observe changes (via the store version)
and write back safely.
"""

from __future__ import annotations

import fnmatch
import threading
from dataclasses import dataclass

from repro.net.message import Request, Response
from repro.net.service import Service

__all__ = ["KeyValueStore"]


@dataclass
class _Record:
    value: bytes
    version: int


class KeyValueStore(Service):
    """An in-memory versioned key-value database."""

    def __init__(self, initial: dict[str, bytes] | None = None) -> None:
        self._lock = threading.Lock()
        self._records: dict[str, _Record] = {
            key: _Record(value=value, version=1)
            for key, value in (initial or {}).items()
        }
        #: Monotonic store-wide version; bumps on every mutation.
        self.store_version = len(self._records)

    def put(self, key: str, value: bytes) -> None:
        """In-process mutation helper (used to model external writers)."""
        with self._lock:
            record = self._records.get(key)
            version = (record.version + 1) if record else 1
            self._records[key] = _Record(value=value, version=version)
            self.store_version += 1

    # -- protocol ------------------------------------------------------------

    def op_get(self, request: Request) -> Response:
        key = request.fields.get("key", "")
        with self._lock:
            record = self._records.get(key)
            if record is None:
                return Response.failure(f"no such key: {key}")
            return Response(payload=record.value,
                            fields={"version": record.version})

    def op_put(self, request: Request) -> Response:
        key = request.fields.get("key", "")
        with self._lock:
            record = self._records.get(key)
            version = (record.version + 1) if record else 1
            self._records[key] = _Record(value=request.payload, version=version)
            self.store_version += 1
            return Response(fields={"version": version})

    def op_cas(self, request: Request) -> Response:
        """Compare-and-swap on the record version."""
        key = request.fields.get("key", "")
        expected = int(request.fields.get("expected_version", 0))
        with self._lock:
            record = self._records.get(key)
            current = record.version if record else 0
            if current != expected:
                return Response.failure("version conflict",
                                        current_version=current)
            version = current + 1
            self._records[key] = _Record(value=request.payload, version=version)
            self.store_version += 1
            return Response(fields={"version": version})

    def op_delete(self, request: Request) -> Response:
        key = request.fields.get("key", "")
        with self._lock:
            if key not in self._records:
                return Response.failure(f"no such key: {key}")
            del self._records[key]
            self.store_version += 1
            return Response()

    def op_scan(self, request: Request) -> Response:
        """Return keys matching a glob pattern, with versions."""
        pattern = request.fields.get("pattern", "*")
        with self._lock:
            matches = {
                key: record.version
                for key, record in sorted(self._records.items())
                if fnmatch.fnmatch(key, pattern)
            }
            return Response(fields={"keys": matches,
                                    "store_version": self.store_version})

    def op_mget(self, request: Request) -> Response:
        """Batch get: payload is newline-joined values for found keys."""
        keys = request.fields.get("keys") or []
        with self._lock:
            found = {}
            payload_parts = []
            for key in keys:
                record = self._records.get(key)
                if record is not None:
                    found[key] = {"version": record.version,
                                  "size": len(record.value)}
                    payload_parts.append(record.value)
            return Response(payload=b"\n".join(payload_parts),
                            fields={"found": found,
                                    "store_version": self.store_version})
