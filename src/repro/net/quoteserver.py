"""A stock-quote feed service.

Backs the paper's example of "an active file that reflects the latest
stock quotes (downloaded by the sentinel from a server) every time the
file is opened".  Prices move on an explicit deterministic random walk:
callers advance the market with :meth:`tick`, so tests and examples see
reproducible sequences (no hidden wall-clock or RNG state).
"""

from __future__ import annotations

import threading

from repro.net.message import Request, Response
from repro.net.service import Service

__all__ = ["QuoteServer"]


class QuoteServer(Service):
    """An in-memory quote feed with a deterministic price walk."""

    def __init__(self, quotes: dict[str, float] | None = None,
                 seed: int = 0x5EED) -> None:
        self._lock = threading.Lock()
        self._quotes: dict[str, float] = dict(quotes or {})
        self._state = seed & 0xFFFFFFFF
        self.generation = 0

    def _next_step(self) -> float:
        """xorshift32-based step in [-1, 1), deterministic per seed."""
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x
        return (x / 2**31) - 1.0

    def set_quote(self, symbol: str, price: float) -> None:
        with self._lock:
            self._quotes[symbol] = price
            self.generation += 1

    def tick(self, steps: int = 1) -> None:
        """Advance the market *steps* times (each symbol moves ±1%)."""
        with self._lock:
            for _ in range(steps):
                for symbol in sorted(self._quotes):
                    price = self._quotes[symbol]
                    self._quotes[symbol] = round(
                        max(0.01, price * (1.0 + 0.01 * self._next_step())), 4
                    )
            self.generation += steps

    # -- protocol ------------------------------------------------------------

    def op_QUOTE(self, request: Request) -> Response:
        symbol = request.fields.get("symbol", "")
        with self._lock:
            price = self._quotes.get(symbol)
            if price is None:
                return Response.failure(f"unknown symbol: {symbol}")
            return Response(fields={"symbol": symbol, "price": price,
                                    "generation": self.generation})

    def op_BATCH(self, request: Request) -> Response:
        symbols = request.fields.get("symbols") or sorted(self._quotes)
        with self._lock:
            known = {s: self._quotes[s] for s in symbols if s in self._quotes}
            missing = [s for s in symbols if s not in self._quotes]
        return Response(fields={"quotes": known, "missing": missing,
                                "generation": self.generation})

    def op_SYMBOLS(self, request: Request) -> Response:
        with self._lock:
            return Response(fields={"symbols": sorted(self._quotes)})
