"""A stock-quote feed service.

Backs the paper's example of "an active file that reflects the latest
stock quotes (downloaded by the sentinel from a server) every time the
file is opened".  Prices move on an explicit deterministic random walk:
callers advance the market with :meth:`tick`, so tests and examples see
reproducible sequences (no hidden wall-clock or RNG state).

Beyond snapshot downloads (``BATCH``), the feed keeps a bounded update
log so subscribed sentinels can ``POLL`` incrementally: "give me every
price change since generation N".  A poller that falls further behind
than the log retains gets ``resync: True`` and a full snapshot instead
of a silent gap.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.net.message import Request, Response
from repro.net.service import Service

__all__ = ["QuoteServer"]

#: Update-log bound: pollers further behind than this must resync.
DEFAULT_LOG_SIZE = 256


class QuoteServer(Service):
    """An in-memory quote feed with a deterministic price walk."""

    def __init__(self, quotes: dict[str, float] | None = None,
                 seed: int = 0x5EED, log_size: int = DEFAULT_LOG_SIZE) -> None:
        self._lock = threading.Lock()
        self._quotes: dict[str, float] = dict(quotes or {})
        self._state = seed & 0xFFFFFFFF
        self.generation = 0
        self._log: deque[dict] = deque(maxlen=int(log_size))
        #: Highest generation ever evicted from the log — a ``POLL``
        #: from at or before this point has lost updates and must resync.
        self._dropped_through = 0

    def _next_step(self) -> float:
        """xorshift32-based step in [-1, 1), deterministic per seed."""
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x
        return (x / 2**31) - 1.0

    def _record(self, symbol: str, price: float) -> None:
        """Append one change to the bounded log (lock held)."""
        if self._log.maxlen and len(self._log) == self._log.maxlen:
            self._dropped_through = self._log[0]["generation"]
        self._log.append({"generation": self.generation,
                          "symbol": symbol, "price": price})

    def set_quote(self, symbol: str, price: float) -> None:
        with self._lock:
            self._quotes[symbol] = price
            self.generation += 1
            self._record(symbol, price)

    def tick(self, steps: int = 1) -> None:
        """Advance the market *steps* times (each symbol moves ±1%)."""
        with self._lock:
            for _ in range(steps):
                self.generation += 1
                for symbol in sorted(self._quotes):
                    price = self._quotes[symbol]
                    price = round(
                        max(0.01, price * (1.0 + 0.01 * self._next_step())), 4
                    )
                    self._quotes[symbol] = price
                    self._record(symbol, price)

    # -- protocol ------------------------------------------------------------

    def op_QUOTE(self, request: Request) -> Response:
        symbol = request.fields.get("symbol", "")
        with self._lock:
            price = self._quotes.get(symbol)
            if price is None:
                return Response.failure(f"unknown symbol: {symbol}")
            return Response(fields={"symbol": symbol, "price": price,
                                    "generation": self.generation})

    def op_BATCH(self, request: Request) -> Response:
        symbols = request.fields.get("symbols") or sorted(self._quotes)
        with self._lock:
            known = {s: self._quotes[s] for s in symbols if s in self._quotes}
            missing = [s for s in symbols if s not in self._quotes]
            return Response(fields={"quotes": known, "missing": missing,
                                    "generation": self.generation})

    def op_SYMBOLS(self, request: Request) -> Response:
        with self._lock:
            return Response(fields={"symbols": sorted(self._quotes)})

    def op_TICK(self, request: Request) -> Response:
        """Advance the market remotely (drives demos and benchmarks)."""
        self.tick(int(request.fields.get("steps", 1)))
        with self._lock:
            return Response(fields={"generation": self.generation})

    def op_POLL(self, request: Request) -> Response:
        """Incremental feed: every change after generation *since*.

        Returns ``{"updates": [...], "generation": G, "resync": bool}``.
        When *since* predates the retained log, ``resync`` is ``True``
        and ``quotes`` carries a full snapshot — the client replaces its
        view instead of applying a gapped delta.
        """
        since = int(request.fields.get("since", 0))
        symbols = set(request.fields.get("symbols") or ())
        with self._lock:
            if since < self._dropped_through:
                quotes = {s: p for s, p in self._quotes.items()
                          if not symbols or s in symbols}
                return Response(fields={"resync": True, "quotes": quotes,
                                        "updates": [],
                                        "generation": self.generation})
            updates = [dict(entry) for entry in self._log
                       if entry["generation"] > since
                       and (not symbols or entry["symbol"] in symbols)]
            return Response(fields={"resync": False, "updates": updates,
                                    "generation": self.generation})
