"""The simulated network fabric.

:class:`Network` binds :class:`~repro.net.service.Service` instances to
:class:`~repro.net.address.Address` endpoints and routes request/response
exchanges between them and clients.  Every exchange is charged a
transport cost — one-way latency plus size over bandwidth, both ways —
against a pluggable clock:

* :class:`AccountingClock` (default) only *accumulates* virtual
  microseconds, so tests and benchmarks measure communication cost
  without sleeping;
* :class:`WallClock` actually sleeps, for demos that want to feel like a
  real 100 Mbps link.

The default :class:`LinkProfile` models the paper's testbed: 100 Mbps
Fast Ethernet between 300 MHz Pentium II machines, with a round-trip
small-message latency in the low hundreds of microseconds.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field

from repro.core.policy import Deadline
from repro.core.telemetry import TELEMETRY
from repro.errors import AddressError, NetworkError
from repro.net.address import Address
from repro.net.message import Request, Response

__all__ = [
    "LinkProfile",
    "AccountingClock",
    "WallClock",
    "NetworkStats",
    "Network",
    "Connection",
]

#: Distinguishes "not partitioned" from "partitioned until healed (None)".
_MISSING = object()


@dataclass(frozen=True)
class LinkProfile:
    """Transport cost parameters for one link.

    ``latency_us`` is the one-way message latency (protocol stack +
    wire); ``bandwidth_mbps`` converts payload size into serialization
    delay.  The defaults approximate the paper's Fast Ethernet testbed.
    """

    latency_us: float = 55.0
    bandwidth_mbps: float = 100.0

    def transfer_us(self, nbytes: int) -> float:
        """One-way cost in microseconds of moving *nbytes*."""
        serialization = (nbytes * 8.0) / self.bandwidth_mbps  # µs: bits / (bits/µs)
        return self.latency_us + serialization


class AccountingClock:
    """A clock that accumulates charged time without sleeping."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._now_us = 0.0

    def charge(self, microseconds: float) -> None:
        if microseconds < 0:
            raise ValueError("cannot charge negative time")
        with self._lock:
            self._now_us += microseconds

    def now_us(self) -> float:
        with self._lock:
            return self._now_us


class WallClock:
    """A clock that really sleeps for each charge (demo mode)."""

    def charge(self, microseconds: float) -> None:
        if microseconds > 0:
            time.sleep(microseconds / 1e6)

    def now_us(self) -> float:
        return time.monotonic() * 1e6


@dataclass
class NetworkStats:
    """Aggregate traffic counters for a :class:`Network`."""

    requests: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    charged_us: float = 0.0
    per_service: dict[str, int] = field(default_factory=dict)
    #: Failure-plane counters: partitions cut, links healed, and calls
    #: dropped because the destination was partitioned at the time.
    partitions: int = 0
    heals: int = 0
    partition_drops: int = 0

    def record(self, address: Address, request_bytes: int,
               response_bytes: int, charged_us: float) -> None:
        self.requests += 1
        self.bytes_sent += request_bytes
        self.bytes_received += response_bytes
        self.charged_us += charged_us
        key = str(address)
        self.per_service[key] = self.per_service.get(key, 0) + 1


class Network:
    """An in-process network connecting clients to bound services."""

    def __init__(self, profile: LinkProfile | None = None,
                 clock: AccountingClock | WallClock | None = None) -> None:
        self.profile = profile or LinkProfile()
        self.clock = clock if clock is not None else AccountingClock()
        self.stats = NetworkStats()
        # Re-home the traffic counters under telemetry.snapshot()
        # (weakly — the entry dies with this Network).
        TELEMETRY.register_collector("network", "network", self.stats, asdict)
        self._services: dict[Address, "_Binding"] = {}
        self._links: dict[Address, LinkProfile] = {}
        self._lock = threading.Lock()
        #: address -> monotonic expiry (``None`` = until healed by hand).
        self._partitioned: dict[Address, float | None] = {}
        #: Optional :class:`~repro.core.faults.FaultPlane` consulted on
        #: every call (set via ``plane.arm_network(network)``).
        self.faults = None

    # -- topology ----------------------------------------------------------

    def bind(self, address: Address, service, profile: LinkProfile | None = None):
        """Attach *service* at *address*; returns the service for chaining."""
        with self._lock:
            if address in self._services:
                raise AddressError(f"address already bound: {address}")
            self._services[address] = _Binding(service, threading.Lock())
            if profile is not None:
                self._links[address] = profile
        setattr(service, "address", address)
        setattr(service, "network", self)
        return service

    def unbind(self, address: Address) -> None:
        with self._lock:
            if address not in self._services:
                raise AddressError(f"address not bound: {address}")
            del self._services[address]
            self._links.pop(address, None)
            self._partitioned.pop(address, None)

    def addresses(self) -> list[Address]:
        with self._lock:
            return sorted(self._services)

    # -- failure injection --------------------------------------------------

    def partition(self, address: Address,
                  duration: float | None = None) -> None:
        """Cut the link to *address*; calls raise :class:`NetworkError`.

        With a *duration* (seconds of wall time) the partition heals
        itself lazily: the first call after expiry goes through.
        Without one, the cut lasts until :meth:`heal`.
        """
        expiry = None if duration is None \
            else time.monotonic() + float(duration)
        with self._lock:
            self._partitioned[address] = expiry
            self.stats.partitions += 1

    def heal(self, address: Address) -> None:
        """Restore the link to *address* (idempotent)."""
        with self._lock:
            if self._partitioned.pop(address, _MISSING) is not _MISSING:
                self.stats.heals += 1

    def _is_partitioned_locked(self, address: Address) -> bool:
        """Partition check with lazy expiry of timed cuts (lock held)."""
        expiry = self._partitioned.get(address, _MISSING)
        if expiry is _MISSING:
            return False
        if expiry is not None and time.monotonic() >= expiry:
            del self._partitioned[address]
            self.stats.heals += 1
            return False
        return True

    # -- data path -----------------------------------------------------------

    def connect(self, address: Address) -> "Connection":
        """Open a connection object to *address* (validates the binding)."""
        with self._lock:
            if address not in self._services:
                raise AddressError(f"no service at {address}")
        return Connection(self, address)

    def call(self, address: Address, request: Request, *,
             deadline: "Deadline | float | None" = None) -> Response:
        """One request/response exchange, with transport accounting.

        The service handler runs under a per-service lock, so services may
        be written single-threaded even though many sentinels (threads)
        can call in concurrently.  An expired *deadline* fails the call
        before any transport cost is charged.
        """
        if TELEMETRY.tracing and TELEMETRY.current() is not None:
            # The origin-exchange leg of a traced request's span tree.
            with TELEMETRY.span(f"net.{request.op}",
                                attrs={"address": str(address)}):
                return self._call(address, request, deadline=deadline)
        return self._call(address, request, deadline=deadline)

    def _call(self, address: Address, request: Request, *,
              deadline: "Deadline | float | None" = None) -> Response:
        if deadline is not None:
            Deadline.coerce(deadline).check(
                f"network call {request.op!r} to {address}")
        plane = self.faults
        if plane is not None:
            rule = plane.on_network(address, request.op)
            if rule is not None:
                if rule.action == "fail":
                    raise NetworkError(
                        f"injected network fault: {request.op!r} to "
                        f"{address}")
                if rule.action == "delay":
                    self.clock.charge(rule.seconds * 1e6)
                elif rule.action == "partition":
                    self.partition(address, duration=rule.seconds or None)
        with self._lock:
            binding = self._services.get(address)
            partitioned = self._is_partitioned_locked(address)
            if partitioned:
                self.stats.partition_drops += 1
            profile = self._links.get(address, self.profile)
        if binding is None:
            raise AddressError(f"no service at {address}")
        if partitioned:
            raise NetworkError(f"network partition: {address} unreachable")

        request_bytes = request.wire_size()
        self.clock.charge(profile.transfer_us(request_bytes))
        with binding.lock:
            try:
                response = binding.service.handle(request)
            except NetworkError:
                raise
            except Exception as exc:  # service bug -> protocol failure
                response = Response.failure(f"{type(exc).__name__}: {exc}")
        response_bytes = response.wire_size()
        self.clock.charge(profile.transfer_us(response_bytes))

        charged = profile.transfer_us(request_bytes) + profile.transfer_us(response_bytes)
        with self._lock:
            self.stats.record(address, request_bytes, response_bytes, charged)
        return response


@dataclass
class _Binding:
    service: object
    lock: threading.Lock


class Connection:
    """A client-side handle to one service endpoint."""

    def __init__(self, network: Network, address: Address) -> None:
        self.network = network
        self.address = address
        self._closed = False

    def call(self, op: str, payload: bytes = b"", *,
             deadline: "Deadline | float | None" = None,
             **fields) -> Response:
        """Issue *op* and return the response; raises on transport failure."""
        if self._closed:
            raise NetworkError("connection is closed")
        request = Request(op=op, fields=dict(fields), payload=payload)
        return self.network.call(self.address, request, deadline=deadline)

    def call_async(self, op: str, payload: bytes = b"", **fields):
        """Issue *op*; returns a zero-argument resolver for the response.

        The in-process network has no wire to pipeline on, so the
        exchange runs eagerly — but errors (including transport
        failures) are deferred to resolution, giving this the same
        surface as :meth:`ProxyConnection.call_async
        <repro.core.netproxy.ProxyConnection.call_async>`: callers can
        issue a batch, then collect.
        """
        try:
            response = self.call(op, payload, **fields)
        except Exception as exc:
            error = exc

            def failed() -> Response:
                raise error
            return failed

        def resolve() -> Response:
            return response
        return resolve

    def expect(self, op: str, payload: bytes = b"", **fields) -> Response:
        """Like :meth:`call` but raises :class:`NetworkError` on ``ok=False``."""
        response = self.call(op, payload, **fields)
        if not response.ok:
            raise NetworkError(
                f"{self.address} rejected {op!r}: {response.error}"
            )
        return response

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
