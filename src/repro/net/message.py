"""Request/response messages exchanged over the simulated network.

Messages are deliberately simple: an operation name, a dict of small
JSON-able fields, and an opaque bytes payload.  The split keeps byte
accounting honest — the fabric charges for ``len(payload)`` plus an
encoded-header estimate — and keeps every service protocol uniform.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Request", "Response", "encoded_size"]

#: Fixed per-message overhead charged by the fabric (framing, addressing),
#: loosely an Ethernet + IP + TCP header budget.
WIRE_HEADER_BYTES = 66


def encoded_size(fields: Mapping[str, Any], payload: bytes) -> int:
    """Approximate on-the-wire size of a message in bytes."""
    header = json.dumps(fields, separators=(",", ":"), sort_keys=True)
    return WIRE_HEADER_BYTES + len(header.encode("utf-8")) + len(payload)


@dataclass
class Request:
    """A client-to-service message."""

    op: str
    fields: dict[str, Any] = field(default_factory=dict)
    payload: bytes = b""
    #: Memoized :meth:`wire_size` — the fabric asks for it at several
    #: charge points per exchange and messages are not mutated after
    #: construction, so the JSON encode runs once.
    _wire_size: int | None = field(default=None, repr=False, compare=False)

    def wire_size(self) -> int:
        if self._wire_size is None:
            self._wire_size = encoded_size(
                {"op": self.op, **self.fields}, self.payload)
        return self._wire_size


@dataclass
class Response:
    """A service-to-client message.

    ``ok`` distinguishes protocol-level failures (bad path, auth denied)
    from transport failures, which surface as exceptions instead.
    """

    ok: bool = True
    fields: dict[str, Any] = field(default_factory=dict)
    payload: bytes = b""
    error: str = ""
    _wire_size: int | None = field(default=None, repr=False, compare=False)

    def wire_size(self) -> int:
        if self._wire_size is None:
            meta = {"ok": self.ok, "error": self.error, **self.fields}
            self._wire_size = encoded_size(meta, self.payload)
        return self._wire_size

    @classmethod
    def failure(cls, error: str, **fields: Any) -> "Response":
        return cls(ok=False, error=error, fields=dict(fields))
