r"""A Windows-registry-style hive service.

Backs the paper's configuration example: "Filtering can also be used to
provide a file-based interface to the Windows system registry,
considerably simplifying system configuration."  The hive is a tree of
keys (``HKLM\Software\Vendor\App``) holding named typed values.  The
:mod:`repro.sentinels.registryfs` sentinel renders a subtree as a plain
text file and parses edits back into registry mutations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.net.message import Request, Response
from repro.net.service import Service

__all__ = ["RegistryServer", "RegistryKey"]

_VALID_TYPES = {"REG_SZ", "REG_DWORD", "REG_BINARY"}


@dataclass
class RegistryKey:
    """One key in the hive tree."""

    subkeys: dict[str, "RegistryKey"] = field(default_factory=dict)
    values: dict[str, tuple[str, Any]] = field(default_factory=dict)


def _split(path: str) -> list[str]:
    return [part for part in path.replace("/", "\\").split("\\") if part]


class RegistryServer(Service):
    """An in-memory registry hive with get/set/delete/enumerate ops."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._root = RegistryKey()
        self.change_count = 0

    # -- tree helpers ---------------------------------------------------------

    def _walk(self, path: str, create: bool = False) -> RegistryKey | None:
        node = self._root
        for part in _split(path):
            child = node.subkeys.get(part)
            if child is None:
                if not create:
                    return None
                child = RegistryKey()
                node.subkeys[part] = child
            node = child
        return node

    def set_value(self, key_path: str, name: str, value: Any,
                  value_type: str = "REG_SZ") -> None:
        """In-process mutation helper used by fixtures and the sentinel."""
        if value_type not in _VALID_TYPES:
            raise ValueError(f"bad registry type: {value_type}")
        if value_type == "REG_DWORD":
            value = int(value)
        with self._lock:
            node = self._walk(key_path, create=True)
            node.values[name] = (value_type, value)
            self.change_count += 1

    def get_value(self, key_path: str, name: str) -> tuple[str, Any]:
        with self._lock:
            node = self._walk(key_path)
            if node is None or name not in node.values:
                raise KeyError(f"{key_path}\\{name}")
            return node.values[name]

    def dump_subtree(self, key_path: str) -> dict:
        """Return a JSON-able snapshot of a subtree (used by the sentinel)."""
        def render(node: RegistryKey) -> dict:
            return {
                "values": {name: {"type": t, "data": v}
                           for name, (t, v) in sorted(node.values.items())},
                "subkeys": {name: render(child)
                            for name, child in sorted(node.subkeys.items())},
            }

        with self._lock:
            node = self._walk(key_path)
            if node is None:
                raise KeyError(key_path)
            return render(node)

    # -- protocol ------------------------------------------------------------

    def op_get(self, request: Request) -> Response:
        key_path = request.fields.get("key", "")
        name = request.fields.get("name", "")
        try:
            value_type, value = self.get_value(key_path, name)
        except KeyError:
            return Response.failure(f"value not found: {key_path}\\{name}")
        return Response(fields={"type": value_type, "data": value})

    def op_set(self, request: Request) -> Response:
        key_path = request.fields.get("key", "")
        name = request.fields.get("name", "")
        value_type = request.fields.get("type", "REG_SZ")
        data = request.fields.get("data")
        try:
            self.set_value(key_path, name, data, value_type)
        except ValueError as exc:
            return Response.failure(str(exc))
        return Response(fields={"change_count": self.change_count})

    def op_delete_value(self, request: Request) -> Response:
        key_path = request.fields.get("key", "")
        name = request.fields.get("name", "")
        with self._lock:
            node = self._walk(key_path)
            if node is None or name not in node.values:
                return Response.failure(f"value not found: {key_path}\\{name}")
            del node.values[name]
            self.change_count += 1
        return Response(fields={"change_count": self.change_count})

    def op_delete_key(self, request: Request) -> Response:
        key_path = request.fields.get("key", "")
        parts = _split(key_path)
        if not parts:
            return Response.failure("cannot delete the hive root")
        with self._lock:
            parent = self._walk("\\".join(parts[:-1]))
            if parent is None or parts[-1] not in parent.subkeys:
                return Response.failure(f"key not found: {key_path}")
            del parent.subkeys[parts[-1]]
            self.change_count += 1
        return Response(fields={"change_count": self.change_count})

    def op_enum(self, request: Request) -> Response:
        key_path = request.fields.get("key", "")
        with self._lock:
            node = self._walk(key_path)
            if node is None:
                return Response.failure(f"key not found: {key_path}")
            return Response(fields={
                "subkeys": sorted(node.subkeys),
                "values": {name: {"type": t, "data": v}
                           for name, (t, v) in sorted(node.values.items())},
            })

    def op_dump(self, request: Request) -> Response:
        key_path = request.fields.get("key", "")
        try:
            tree = self.dump_subtree(key_path)
        except KeyError:
            return Response.failure(f"key not found: {key_path}")
        return Response(fields={"tree": tree,
                                "change_count": self.change_count})
