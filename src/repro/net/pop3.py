"""A minimal POP3-style mailbox service.

Backs the paper's inbox example: "an inbox file of an E-mail program can
be such that reading it causes new messages to be retrieved possibly
from multiple remote POP servers".  The op set follows POP3 semantics:
STAT, LIST, RETR, DELE, with deletions applied at QUIT like the real
protocol's update state.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.net.message import Request, Response
from repro.net.service import Service

__all__ = ["Pop3Server", "MailMessage"]


@dataclass
class MailMessage:
    """One stored mail message."""

    sender: str
    recipient: str
    subject: str
    body: str

    def render(self) -> bytes:
        """RFC822-ish rendering used for RETR payloads."""
        text = (
            f"From: {self.sender}\r\n"
            f"To: {self.recipient}\r\n"
            f"Subject: {self.subject}\r\n"
            f"\r\n"
            f"{self.body}\r\n"
        )
        return text.encode("utf-8")


@dataclass
class _Mailbox:
    password: str
    messages: list[MailMessage] = field(default_factory=list)
    pending_delete: set[int] = field(default_factory=set)


class Pop3Server(Service):
    """An in-memory POP3-like server with per-user mailboxes."""

    def __init__(self, users: dict[str, str] | None = None) -> None:
        self._lock = threading.Lock()
        self._boxes: dict[str, _Mailbox] = {
            user: _Mailbox(password=password)
            for user, password in (users or {}).items()
        }

    def deliver(self, message: MailMessage) -> bool:
        """Deposit *message* into the recipient's mailbox (SMTP hook)."""
        user = message.recipient.split("@", 1)[0]
        with self._lock:
            box = self._boxes.get(user)
            if box is None:
                return False
            box.messages.append(message)
            return True

    def add_user(self, user: str, password: str) -> None:
        with self._lock:
            self._boxes[user] = _Mailbox(password=password)

    def message_count(self, user: str) -> int:
        with self._lock:
            return len(self._boxes[user].messages)

    def _auth(self, request: Request) -> _Mailbox | Response:
        user = request.fields.get("user", "")
        password = request.fields.get("password", "")
        box = self._boxes.get(user)
        if box is None or box.password != password:
            return Response.failure("-ERR authentication failed")
        return box

    # -- protocol ------------------------------------------------------------

    def op_STAT(self, request: Request) -> Response:
        with self._lock:
            box = self._auth(request)
            if isinstance(box, Response):
                return box
            live = [m for i, m in enumerate(box.messages)
                    if i not in box.pending_delete]
            octets = sum(len(m.render()) for m in live)
            return Response(fields={"count": len(live), "octets": octets})

    def op_LIST(self, request: Request) -> Response:
        with self._lock:
            box = self._auth(request)
            if isinstance(box, Response):
                return box
            listing = [
                {"index": i, "octets": len(m.render())}
                for i, m in enumerate(box.messages)
                if i not in box.pending_delete
            ]
            return Response(fields={"messages": listing})

    def op_RETR(self, request: Request) -> Response:
        index = int(request.fields.get("index", -1))
        with self._lock:
            box = self._auth(request)
            if isinstance(box, Response):
                return box
            if not 0 <= index < len(box.messages) or index in box.pending_delete:
                return Response.failure(f"-ERR no such message: {index}")
            return Response(payload=box.messages[index].render())

    def op_DELE(self, request: Request) -> Response:
        index = int(request.fields.get("index", -1))
        with self._lock:
            box = self._auth(request)
            if isinstance(box, Response):
                return box
            if not 0 <= index < len(box.messages) or index in box.pending_delete:
                return Response.failure(f"-ERR no such message: {index}")
            box.pending_delete.add(index)
            return Response()

    def op_QUIT(self, request: Request) -> Response:
        with self._lock:
            box = self._auth(request)
            if isinstance(box, Response):
                return box
            box.messages = [m for i, m in enumerate(box.messages)
                            if i not in box.pending_delete]
            removed = len(box.pending_delete)
            box.pending_delete.clear()
            return Response(fields={"expunged": removed})
