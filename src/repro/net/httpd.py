"""A minimal HTTP-style document service.

Models the paper's "seamless access to remote files ... using a standard
protocol (e.g., FTP or HTTP)".  The protocol is a tiny subset of HTTP/1.0
semantics expressed as network ops: GET (with optional Range), HEAD, PUT,
DELETE.  Documents carry an entity tag (a version counter rendered as a
string) so caching sentinels can revalidate cheaply with a conditional
GET, exactly the way a real HTTP cache would.
"""

from __future__ import annotations

import threading

from repro.net.message import Request, Response
from repro.net.service import Service

__all__ = ["HttpServer"]


class HttpServer(Service):
    """An in-memory HTTP-like origin server."""

    def __init__(self, documents: dict[str, bytes] | None = None) -> None:
        self._lock = threading.Lock()
        self._docs: dict[str, bytearray] = {}
        self._etags: dict[str, int] = {}
        self.hits = 0
        self.conditional_hits = 0
        for path, body in (documents or {}).items():
            self._docs[path] = bytearray(body)
            self._etags[path] = 1

    def put_document(self, path: str, body: bytes) -> None:
        """In-process publish/update of a document."""
        with self._lock:
            self._docs[path] = bytearray(body)
            self._etags[path] = self._etags.get(path, 0) + 1

    def etag(self, path: str) -> str:
        with self._lock:
            return f'"{self._etags.get(path, 0)}"'

    # -- protocol ------------------------------------------------------------

    def op_GET(self, request: Request) -> Response:
        path = request.fields.get("path", "")
        if_none_match = request.fields.get("if_none_match")
        range_start = request.fields.get("range_start")
        range_end = request.fields.get("range_end")
        with self._lock:
            body = self._docs.get(path)
            if body is None:
                return Response.failure("404 Not Found", status=404)
            etag = f'"{self._etags[path]}"'
            self.hits += 1
            if if_none_match is not None and if_none_match == etag:
                self.conditional_hits += 1
                return Response(fields={"status": 304, "etag": etag})
            data = bytes(body)
            status = 200
            if range_start is not None:
                end = len(data) if range_end is None else int(range_end)
                data = data[int(range_start):end]
                status = 206
            return Response(payload=data,
                            fields={"status": status, "etag": etag,
                                    "length": len(body)})

    def op_HEAD(self, request: Request) -> Response:
        path = request.fields.get("path", "")
        with self._lock:
            body = self._docs.get(path)
            if body is None:
                return Response.failure("404 Not Found", status=404)
            return Response(fields={"status": 200,
                                    "etag": f'"{self._etags[path]}"',
                                    "length": len(body)})

    def op_PUT(self, request: Request) -> Response:
        path = request.fields.get("path", "")
        with self._lock:
            created = path not in self._docs
            self._docs[path] = bytearray(request.payload)
            self._etags[path] = self._etags.get(path, 0) + 1
            return Response(fields={"status": 201 if created else 200,
                                    "etag": f'"{self._etags[path]}"'})

    def op_DELETE(self, request: Request) -> Response:
        path = request.fields.get("path", "")
        with self._lock:
            if path not in self._docs:
                return Response.failure("404 Not Found", status=404)
            del self._docs[path]
            del self._etags[path]
            return Response(fields={"status": 204})
