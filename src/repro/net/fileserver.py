"""A plain remote file service.

This is the canonical "remote information source" of the paper's
evaluation: the sentinel's path-1 configuration performs one read or
write exchange against this service per application operation.  The
protocol supports ranged reads and writes so sentinels can move exactly
the block the application asked for.

Operations::

    read   path, offset, size          -> payload bytes
    readv  path, extents               -> concatenated bytes + sizes
    write  path, offset (+payload)     -> written count
    writev path, extents (+payload)    -> written counts (one version bump)
    append path (+payload)             -> offset written at
    stat   path                        -> size, version
    create path (+payload optional)    -> ok
    delete path                        -> ok
    list   prefix                      -> names
    truncate path, size                -> ok

Every mutation bumps a per-file version counter, which caching sentinels
use for consistency checks ("the cache can be kept consistent with any
updates performed ... at any of the remote sources").
"""

from __future__ import annotations

import fnmatch
import threading
from dataclasses import dataclass, field

from repro.net.message import Request, Response
from repro.net.service import Service
from repro.util.bytesbuf import ByteBuffer

__all__ = ["FileServer", "RemoteFile"]


@dataclass
class RemoteFile:
    """One file hosted by the server."""

    body: ByteBuffer = field(default_factory=ByteBuffer)
    version: int = 0

    def bump(self) -> None:
        self.version += 1


class FileServer(Service):
    """An in-memory remote file store with ranged access."""

    def __init__(self, files: dict[str, bytes] | None = None) -> None:
        self._files: dict[str, RemoteFile] = {}
        self._lock = threading.Lock()
        self._watchers: list = []
        for name, body in (files or {}).items():
            self._files[name] = RemoteFile(body=ByteBuffer(body), version=1)

    # -- direct (in-process) helpers, used by tests and fixtures ------------

    def put_file(self, path: str, body: bytes) -> None:
        with self._lock:
            entry = self._files.setdefault(path, RemoteFile())
            entry.body.setvalue(body)
            entry.bump()
        self._notify(path)

    def get_file(self, path: str) -> bytes:
        with self._lock:
            entry = self._files.get(path)
            if entry is None:
                raise KeyError(path)
            return entry.body.getvalue()

    def subscribe(self, callback) -> None:
        """Register *callback(path)* invoked after every mutation.

        This is the hook caching sentinels use to invalidate on remote
        updates (the paper's consistency requirement).
        """
        self._watchers.append(callback)

    def _notify(self, path: str) -> None:
        for callback in list(self._watchers):
            callback(path)

    def _entry(self, path: str) -> RemoteFile | None:
        return self._files.get(path)

    # -- protocol ------------------------------------------------------------

    def op_read(self, request: Request) -> Response:
        path = request.fields.get("path", "")
        offset = int(request.fields.get("offset", 0))
        size = int(request.fields.get("size", 0))
        with self._lock:
            entry = self._entry(path)
            if entry is None:
                return Response.failure(f"no such file: {path}")
            data = entry.body.read_at(offset, size)
            return Response(payload=data,
                            fields={"version": entry.version, "eof": offset + size >= entry.body.size})

    def op_readv(self, request: Request) -> Response:
        """Vectored read: many ``(offset, size)`` extents, one exchange.

        The response payload carries the extents' bytes back-to-back;
        ``sizes`` records each (possibly short) extent's actual length.
        """
        path = request.fields.get("path", "")
        extents = request.fields.get("extents") or []
        with self._lock:
            entry = self._entry(path)
            if entry is None:
                return Response.failure(f"no such file: {path}")
            chunks = [entry.body.read_at(int(offset), int(size))
                      for offset, size in extents]
            return Response(payload=b"".join(chunks),
                            fields={"sizes": [len(c) for c in chunks],
                                    "version": entry.version})

    def op_writev(self, request: Request) -> Response:
        """Vectored write: the payload is split by the extents list.

        One exchange, one version bump, one watcher notification — this
        is the landing op for a coalesced write-behind flush.
        """
        path = request.fields.get("path", "")
        extents = request.fields.get("extents") or []
        view = memoryview(request.payload)
        cursor = 0
        with self._lock:
            entry = self._files.setdefault(path, RemoteFile())
            written = []
            for offset, size in extents:
                size = int(size)
                written.append(entry.body.write_at(
                    int(offset), bytes(view[cursor:cursor + size])))
                cursor += size
            entry.bump()
            version = entry.version
        self._notify(path)
        return Response(fields={"written": written, "version": version})

    def op_write(self, request: Request) -> Response:
        path = request.fields.get("path", "")
        offset = int(request.fields.get("offset", 0))
        with self._lock:
            entry = self._files.setdefault(path, RemoteFile())
            written = entry.body.write_at(offset, request.payload)
            entry.bump()
            version = entry.version
        self._notify(path)
        return Response(fields={"written": written, "version": version})

    def op_append(self, request: Request) -> Response:
        path = request.fields.get("path", "")
        with self._lock:
            entry = self._files.setdefault(path, RemoteFile())
            offset = entry.body.append(request.payload)
            entry.bump()
            version = entry.version
        self._notify(path)
        return Response(fields={"offset": offset, "version": version})

    def op_stat(self, request: Request) -> Response:
        path = request.fields.get("path", "")
        with self._lock:
            entry = self._entry(path)
            if entry is None:
                return Response.failure(f"no such file: {path}")
            return Response(fields={"size": entry.body.size, "version": entry.version})

    def op_create(self, request: Request) -> Response:
        path = request.fields.get("path", "")
        exclusive = bool(request.fields.get("exclusive", False))
        with self._lock:
            if exclusive and path in self._files:
                return Response.failure(f"file exists: {path}")
            entry = self._files.setdefault(path, RemoteFile())
            if request.payload:
                entry.body.setvalue(request.payload)
            entry.bump()
        self._notify(path)
        return Response()

    def op_delete(self, request: Request) -> Response:
        path = request.fields.get("path", "")
        with self._lock:
            if path not in self._files:
                return Response.failure(f"no such file: {path}")
            del self._files[path]
        self._notify(path)
        return Response()

    def op_truncate(self, request: Request) -> Response:
        path = request.fields.get("path", "")
        size = int(request.fields.get("size", 0))
        with self._lock:
            entry = self._entry(path)
            if entry is None:
                return Response.failure(f"no such file: {path}")
            entry.body.truncate(size)
            entry.bump()
        self._notify(path)
        return Response()

    def op_list(self, request: Request) -> Response:
        pattern = request.fields.get("pattern", "*")
        with self._lock:
            names = sorted(n for n in self._files if fnmatch.fnmatch(n, pattern))
        return Response(fields={"names": names})
