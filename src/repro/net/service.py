"""Base class for simulated remote services.

A service implements operations as ``op_<name>`` methods taking the
:class:`~repro.net.message.Request` and returning a
:class:`~repro.net.message.Response`.  Dispatch, unknown-op handling and
uniform error reporting live here so each concrete service only contains
protocol logic.
"""

from __future__ import annotations

from repro.net.message import Request, Response

__all__ = ["Service"]


class Service:
    """A network-addressable request/response server."""

    #: Set by :meth:`Network.bind`.
    address = None
    network = None
    #: Optional :class:`~repro.core.faults.FaultPlane`; when set, a
    #: matching ``service``/``fail`` rule turns the exchange into a
    #: failure response (a flaky server, as seen by every client).
    faults = None

    def handle(self, request: Request) -> Response:
        """Dispatch *request* to the matching ``op_`` method."""
        plane = self.faults
        if plane is not None and plane.on_service(request.op) is not None:
            return Response.failure(
                f"injected service fault: {request.op!r}")
        handler = getattr(self, f"op_{request.op}", None)
        if handler is None:
            return Response.failure(f"unknown operation: {request.op!r}")
        return handler(request)

    def ops(self) -> list[str]:
        """Names of the operations this service implements."""
        return sorted(
            name[len("op_"):]
            for name in dir(self)
            if name.startswith("op_") and callable(getattr(self, name))
        )
