"""In-process simulated network and remote information sources.

The paper evaluates active files against remote services reached over
100 Mbps Fast Ethernet.  This package provides the equivalent substrate:
a message-passing :class:`~repro.net.network.Network` that connects
clients (sentinels) to :class:`~repro.net.service.Service` instances,
charging each exchange a latency + per-byte cost against a pluggable
clock.  Services cover every information source the paper's Section 3
mentions: plain file servers, HTTP- and FTP-style servers, POP3/SMTP
mail, a stock-quote feed, a key-value database, and a Windows-registry
style hive.
"""

from repro.net.address import Address
from repro.net.message import Request, Response
from repro.net.network import AccountingClock, LinkProfile, Network, WallClock
from repro.net.service import Service

from repro.net.fileserver import FileServer
from repro.net.ftpd import FtpServer
from repro.net.httpd import HttpServer
from repro.net.kvstore import KeyValueStore
from repro.net.pop3 import Pop3Server
from repro.net.quoteserver import QuoteServer
from repro.net.smtpd import SmtpServer
from repro.net.winregistry import RegistryServer

__all__ = [
    "Address",
    "Request",
    "Response",
    "Network",
    "LinkProfile",
    "AccountingClock",
    "WallClock",
    "Service",
    "FileServer",
    "FtpServer",
    "HttpServer",
    "KeyValueStore",
    "Pop3Server",
    "QuoteServer",
    "SmtpServer",
    "RegistryServer",
]
