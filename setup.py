"""Legacy setup shim (environment lacks the `wheel` package, so the
PEP 517 editable path is unavailable; `pip install -e . --no-use-pep517`
uses this file instead)."""
from setuptools import setup

setup()
