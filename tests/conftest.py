"""Shared fixtures for the test suite."""

import pytest

from repro.core import create_active
from repro.net import Address, FileServer, Network

#: All four §4 strategies; process ones spawn a real child interpreter.
ALL_STRATEGIES = ("inproc", "thread", "process-control", "process")

#: Strategies with a control channel (full file API).
CONTROL_STRATEGIES = ("inproc", "thread", "process-control")

#: Fast strategies for tests where the transport doesn't matter.
FAST_STRATEGIES = ("inproc", "thread")


@pytest.fixture
def network():
    return Network()


@pytest.fixture
def fileserver(network):
    address = Address("files.test", 7000)
    server = network.bind(address, FileServer())
    server.test_address = address
    return server


@pytest.fixture
def make_active(tmp_path):
    """Factory for active files in a temp directory."""
    counter = [0]

    def factory(target, params=None, data=b"", meta=None, name=None):
        counter[0] += 1
        path = tmp_path / (name or f"file{counter[0]}.af")
        create_active(path, target, params=params, data=data, meta=meta)
        return str(path)

    return factory
