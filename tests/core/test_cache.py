"""Tests for the block cache (Figure 5 paths 2 and 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import BlockCache
from repro.core.datapart import MemoryDataPart
from repro.errors import CacheError
from repro.util.bytesbuf import ByteBuffer


class Origin:
    """An instrumented fake remote origin."""

    def __init__(self, body=b""):
        self.body = ByteBuffer(body)
        self.reads = 0
        self.writes = 0
        self.batches = []
        self.fail_push = False

    def fetch(self, offset, size):
        self.reads += 1
        return self.body.read_at(offset, size)

    def read_window(self, offset, size):
        """Pipelined fetch: the bytes are captured at *issue* time, the
        way a request already on the wire sees the origin — resolving
        later returns this snapshot, not the current contents."""
        self.reads += 1
        snapshot = self.body.read_at(offset, size)
        return lambda: snapshot

    def push(self, offset, data):
        if self.fail_push:
            raise OSError("origin unreachable")
        self.writes += 1
        return self.body.write_at(offset, data)

    def push_extents(self, extents):
        if self.fail_push:
            raise OSError("origin unreachable")
        self.batches.append([(offset, bytes(data)) for offset, data in extents])
        for offset, data in extents:
            self.writes += 1
            self.body.write_at(offset, data)


def make_cache(body=b"", block_size=8, max_blocks=None, *,
               windowed=False, batched=False, **cache_kw):
    origin = Origin(body)
    if windowed:
        cache_kw["fetch_window"] = origin.read_window
    if batched:
        cache_kw["push_extents"] = origin.push_extents
    cache = BlockCache(fetch=origin.fetch, push=origin.push,
                       store=MemoryDataPart(), block_size=block_size,
                       max_blocks=max_blocks, **cache_kw)
    return cache, origin


class TestReads:
    def test_first_read_faults_blocks(self):
        cache, origin = make_cache(b"0123456789abcdef", block_size=8)
        assert cache.read(0, 4) == b"0123"
        assert origin.reads == 1
        assert cache.misses == 1

    def test_repeat_read_hits(self):
        cache, origin = make_cache(b"0123456789abcdef", block_size=8)
        cache.read(0, 4)
        cache.read(2, 4)
        assert origin.reads == 1
        assert cache.hits == 1

    def test_read_spanning_blocks(self):
        cache, origin = make_cache(b"0123456789abcdef", block_size=4)
        assert cache.read(2, 8) == b"23456789"
        assert origin.reads == 1  # blocks 0,1,2 coalesced into one fetch
        assert cache.misses == 3

    def test_read_past_origin_end_is_short(self):
        cache, _ = make_cache(b"short", block_size=8)
        assert cache.read(0, 100) == b"short"
        assert cache.read(5, 10) == b""

    def test_short_fetch_sets_known_end(self):
        cache, origin = make_cache(b"0123456789", block_size=8)
        cache.read(0, 10)
        # reads entirely past the end don't re-fetch
        origin.reads = 0
        assert cache.read(50, 10) == b""
        assert origin.reads == 0

    def test_zero_and_negative_sizes(self):
        cache, _ = make_cache(b"abc")
        assert cache.read(0, 0) == b""
        assert cache.read(-1, 5) == b""


class TestWrites:
    def test_write_through(self):
        cache, origin = make_cache(b"00000000", block_size=4)
        cache.write(2, b"XY")
        assert origin.body.getvalue() == b"00XY0000"
        assert origin.writes == 1

    def test_write_updates_cached_block(self):
        cache, origin = make_cache(b"00000000", block_size=8)
        cache.read(0, 8)
        cache.write(0, b"ZZ")
        origin.reads = 0
        assert cache.read(0, 8) == b"ZZ000000"
        assert origin.reads == 0  # served from cache

    def test_full_block_write_becomes_valid_without_fetch(self):
        cache, origin = make_cache(b"0" * 16, block_size=8)
        cache.write(0, b"A" * 8)
        origin.reads = 0
        assert cache.read(0, 8) == b"A" * 8
        assert origin.reads == 0

    def test_partial_write_to_uncached_block_stays_invalid(self):
        cache, origin = make_cache(b"00000000", block_size=8)
        cache.write(2, b"XY")  # partial, block not cached
        assert cache.read(0, 8) == b"00XY0000"
        assert origin.reads == 1  # had to fetch on read

    def test_write_extends_known_end(self):
        cache, origin = make_cache(b"abc", block_size=4)
        cache.read(0, 3)            # learns end = 3
        cache.write(3, b"defg")     # extends origin
        assert cache.read(0, 7) == b"abcdefg"

    def test_empty_write(self):
        cache, origin = make_cache(b"abc")
        assert cache.write(1, b"") == 0
        assert origin.body.getvalue() == b"abc"


class TestEviction:
    def test_lru_bound_respected(self):
        cache, origin = make_cache(bytes(range(64)), block_size=8,
                                   max_blocks=2)
        cache.read(0, 8)
        cache.read(8, 8)
        cache.read(16, 8)
        assert cache.cached_blocks == 2

    def test_lru_evicts_least_recent(self):
        cache, origin = make_cache(bytes(64), block_size=8, max_blocks=2)
        cache.read(0, 8)   # block 0
        cache.read(8, 8)   # block 1
        cache.read(0, 8)   # touch block 0
        cache.read(16, 8)  # block 2 -> evicts block 1
        origin.reads = 0
        cache.read(0, 8)
        assert origin.reads == 0    # block 0 still cached
        cache.read(8, 8)
        assert origin.reads == 1    # block 1 was evicted


class TestInvalidation:
    def test_full_invalidate_refetches(self):
        cache, origin = make_cache(b"version one....", block_size=16)
        assert cache.read(0, 11) == b"version one"
        origin.body.setvalue(b"version two....")
        cache.invalidate()
        assert cache.read(0, 11) == b"version two"

    def test_range_invalidate(self):
        cache, origin = make_cache(bytes(32), block_size=8)
        cache.read(0, 32)
        fetched_before = origin.reads
        cache.invalidate(offset=8, size=8)  # only block 1
        cache.read(0, 32)
        assert origin.reads == fetched_before + 1


class TestReadahead:
    def test_sequential_scan_prefetches(self):
        body = bytes(range(256))
        cache, origin = make_cache(body, block_size=8, readahead=8,
                                   windowed=True)
        for offset in range(0, 256, 8):
            assert cache.read(offset, 8) == body[offset:offset + 8]
        assert cache.prefetch_issued > 0
        assert cache.prefetch_used > 0
        assert cache.hits > 0
        # far fewer origin exchanges than the 32 blocks scanned
        assert origin.reads < 16

    def test_prefetched_block_needs_no_new_fetch(self):
        body = bytes(range(64))
        cache, origin = make_cache(body, block_size=8, readahead=4,
                                   windowed=True)
        cache.read(0, 8)
        cache.read(8, 8)   # sequential: issues read-ahead past block 1
        assert cache.prefetch_issued > 0
        misses = cache.misses
        assert cache.read(16, 8) == body[16:24]
        assert cache.misses == misses      # no demand fetch needed
        assert cache.prefetch_used >= 1    # served from the in-flight window

    def test_random_reads_never_prefetch(self):
        cache, _ = make_cache(bytes(256), block_size=8, readahead=8,
                              windowed=True)
        for offset in (0, 128, 64, 192):
            cache.read(offset, 8)
        assert cache.prefetch_issued == 0

    def test_seek_resets_window(self):
        cache, _ = make_cache(bytes(256), block_size=8, readahead=8,
                              windowed=True)
        for offset in range(0, 64, 8):
            cache.read(offset, 8)
        assert cache.stats()["window"] > 0
        cache.read(200, 8)  # a seek breaks the sequential run
        assert cache.stats()["window"] == 0

    def test_readahead_stops_at_known_end(self):
        cache, origin = make_cache(b"0123456789" * 2, block_size=8,
                                   readahead=16, windowed=True)
        for offset in range(0, 32, 8):
            cache.read(offset, 8)
        # never more in-flight exchanges than the file has blocks + 1
        assert origin.reads <= 4

    def test_failed_prefetch_heals_on_demand(self):
        body = bytes(range(64))
        origin = Origin(body)
        link_down = [True]

        def flaky_window(offset, size):
            # Captured at issue time, like a request already on the wire:
            # windows issued past block 1 while the link is down die.
            fails = link_down[0] and offset >= 16
            data = origin.body.read_at(offset, size)

            def resolve():
                if fails:
                    raise OSError("link dropped mid-transfer")
                return data
            return resolve

        cache = BlockCache(fetch=origin.fetch, push=origin.push,
                           store=MemoryDataPart(), block_size=8,
                           readahead=4, fetch_window=flaky_window)
        cache.read(0, 8)
        cache.read(8, 8)       # read-ahead issued now is doomed
        assert cache.prefetch_issued > 0
        link_down[0] = False   # link heals before the reader arrives
        assert cache.read(16, 8) == body[16:24]


class TestWriteback:
    def test_writes_buffered_until_flush(self):
        cache, origin = make_cache(b"0" * 16, writeback=True, batched=True)
        cache.write(2, b"XY")
        assert origin.writes == 0
        assert cache.read(0, 8) == b"00XY0000"  # reads see buffered bytes
        cache.flush()
        assert origin.body.getvalue() == b"00XY00000000000000"[:16]
        assert cache.coalesced_flushes == 1

    def test_contiguous_writes_coalesce_into_one_extent(self):
        cache, origin = make_cache(b"0" * 32, writeback=True, batched=True)
        cache.write(0, b"AAAA")
        cache.write(4, b"BBBB")
        cache.write(8, b"CCCC")
        cache.flush()
        assert len(origin.batches) == 1
        assert origin.batches[0] == [(0, b"AAAABBBBCCCC")]

    def test_autoflush_at_threshold(self):
        cache, origin = make_cache(b"0" * 64, writeback=True, batched=True,
                                   writeback_bytes=16)
        cache.write(0, b"A" * 8)
        assert origin.writes == 0
        cache.write(8, b"B" * 8)   # crosses the 16-byte threshold
        assert origin.body.getvalue()[:16] == b"A" * 8 + b"B" * 8
        assert cache.dirty_high_water == 16

    def test_flush_before_evict(self):
        cache, origin = make_cache(b"0" * 24, writeback=True, batched=True,
                                   max_blocks=1)
        cache.write(0, b"A" * 8)   # block 0 valid and dirty
        cache.read(8, 8)           # admits block 1, evicting dirty block 0
        assert origin.body.getvalue()[:8] == b"A" * 8  # flushed, not lost
        assert cache.read(0, 8) == b"A" * 8

    def test_failed_flush_keeps_dirty(self):
        cache, origin = make_cache(b"0" * 16, writeback=True, batched=True)
        cache.write(2, b"XY")
        origin.fail_push = True
        with pytest.raises(OSError):
            cache.flush()
        assert cache.dirty_bytes == 2      # nothing silently dropped
        origin.fail_push = False
        cache.flush()
        assert origin.body.getvalue()[:8] == b"00XY0000"

    def test_dirty_survives_invalidate(self):
        cache, origin = make_cache(b"0" * 16, writeback=True, batched=True)
        cache.write(2, b"XY")
        cache.invalidate()
        assert cache.read(0, 8) == b"00XY0000"
        assert origin.writes == 0   # still buffered

    def test_close_semantics_flush_is_idempotent(self):
        cache, origin = make_cache(b"0" * 16, writeback=True, batched=True)
        cache.flush()
        assert cache.coalesced_flushes == 0  # nothing dirty: no exchange
        cache.write(0, b"Z")
        cache.flush()
        cache.flush()
        assert cache.coalesced_flushes == 1


class TestInflightConsistency:
    """Regression tests: in-flight prefetches vs invalidate/write/flush."""

    def test_stale_prefetch_discarded_after_invalidate(self):
        body = b"old-old-old-old-old-old-old-old-"
        cache, origin = make_cache(body, block_size=8, readahead=4,
                                   windowed=True)
        cache.read(0, 8)
        cache.read(8, 8)   # read-ahead snapshots the *old* body
        assert cache.prefetch_issued > 0
        origin.body.setvalue(b"new-new-new-new-new-new-new-new-")
        cache.invalidate()
        assert cache.read(16, 8) == b"new-new-"

    def test_stale_prefetch_does_not_clobber_buffered_write(self):
        body = b"0" * 64
        cache, origin = make_cache(body, block_size=8, readahead=4,
                                   windowed=True, batched=True,
                                   writeback=True)
        cache.write(25, b"Z")   # block 3 partially dirty, not valid
        cache.read(0, 8)
        cache.read(8, 8)        # read-ahead snapshots block 3 without Z
        assert cache.read(24, 8) == b"0Z000000"

    def test_stale_prefetch_does_not_clobber_flushed_write(self):
        body = b"0" * 64
        cache, origin = make_cache(body, block_size=8, readahead=4,
                                   windowed=True, batched=True,
                                   writeback=True)
        cache.write(25, b"Z")   # buffered; origin still all zeros
        cache.read(0, 8)
        cache.read(8, 8)        # read-ahead snapshots block 3 pre-flush
        cache.flush()           # origin now has Z; dirty range cleared
        assert cache.read(24, 8) == b"0Z000000"


class TestValidation:
    def test_bad_block_size(self):
        with pytest.raises(CacheError):
            BlockCache(fetch=lambda o, s: b"", push=lambda o, d: 0,
                       store=MemoryDataPart(), block_size=0)

    def test_bad_max_blocks(self):
        with pytest.raises(CacheError):
            BlockCache(fetch=lambda o, s: b"", push=lambda o, d: 0,
                       store=MemoryDataPart(), max_blocks=0)

    def test_bad_readahead(self):
        with pytest.raises(CacheError):
            BlockCache(fetch=lambda o, s: b"", push=lambda o, d: 0,
                       store=MemoryDataPart(), readahead=-1)

    def test_bad_writeback_bytes(self):
        with pytest.raises(CacheError):
            BlockCache(fetch=lambda o, s: b"", push=lambda o, d: 0,
                       store=MemoryDataPart(), writeback=True,
                       writeback_bytes=0)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(body=st.binary(min_size=1, max_size=200),
           block_size=st.sampled_from([1, 3, 8, 16]),
           reads=st.lists(st.tuples(st.integers(0, 220), st.integers(0, 64)),
                          max_size=10))
    def test_cached_reads_match_origin(self, body, block_size, reads):
        cache, origin = make_cache(body, block_size=block_size)
        for offset, size in reads:
            assert cache.read(offset, size) == body[offset:offset + size]

    @settings(max_examples=60, deadline=None)
    @given(block_size=st.sampled_from([2, 4, 8]),
           ops=st.lists(
               st.one_of(
                   st.tuples(st.just("r"), st.integers(0, 64), st.integers(0, 24)),
                   st.tuples(st.just("w"), st.integers(0, 64),
                             st.binary(min_size=1, max_size=16)),
               ), max_size=14))
    def test_mixed_ops_match_reference(self, block_size, ops):
        body = b"0123456789" * 3
        cache, origin = make_cache(body, block_size=block_size)
        reference = ByteBuffer(body)
        for op in ops:
            if op[0] == "r":
                _, offset, size = op
                expected = reference.read_at(offset, size)
                assert cache.read(offset, size) == expected
            else:
                _, offset, data = op
                cache.write(offset, data)
                reference.write_at(offset, data)
        assert origin.body.getvalue() == reference.getvalue()

    @settings(max_examples=80, deadline=None)
    @given(block_size=st.sampled_from([2, 4, 8]),
           readahead=st.sampled_from([0, 2, 4]),
           writeback_bytes=st.sampled_from([8, 1 << 20]),
           ops=st.lists(
               st.one_of(
                   st.tuples(st.just("r"), st.integers(0, 64), st.integers(0, 24)),
                   st.tuples(st.just("w"), st.integers(0, 64),
                             st.binary(min_size=1, max_size=16)),
                   st.tuples(st.just("f"), st.just(0), st.just(0)),
               ), max_size=14))
    def test_writeback_interleavings_match_reference(self, block_size,
                                                     readahead,
                                                     writeback_bytes, ops):
        """Write-behind + read-ahead is observationally a plain file:
        every read matches, and after the final flush so does the origin."""
        body = b"0123456789" * 3
        cache, origin = make_cache(body, block_size=block_size,
                                   readahead=readahead, windowed=True,
                                   writeback=True, batched=True,
                                   writeback_bytes=writeback_bytes)
        reference = ByteBuffer(body)
        for kind, offset, arg in ops:
            if kind == "r":
                expected = reference.read_at(offset, arg)
                assert cache.read(offset, arg) == expected
            elif kind == "w":
                cache.write(offset, arg)
                reference.write_at(offset, arg)
            else:
                cache.flush()
        cache.flush()
        assert origin.body.getvalue() == reference.getvalue()
        assert cache.dirty_bytes == 0
