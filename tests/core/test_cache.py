"""Tests for the block cache (Figure 5 paths 2 and 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import BlockCache
from repro.core.datapart import MemoryDataPart
from repro.errors import CacheError
from repro.util.bytesbuf import ByteBuffer


class Origin:
    """An instrumented fake remote origin."""

    def __init__(self, body=b""):
        self.body = ByteBuffer(body)
        self.reads = 0
        self.writes = 0

    def fetch(self, offset, size):
        self.reads += 1
        return self.body.read_at(offset, size)

    def push(self, offset, data):
        self.writes += 1
        return self.body.write_at(offset, data)


def make_cache(body=b"", block_size=8, max_blocks=None):
    origin = Origin(body)
    cache = BlockCache(fetch=origin.fetch, push=origin.push,
                       store=MemoryDataPart(), block_size=block_size,
                       max_blocks=max_blocks)
    return cache, origin


class TestReads:
    def test_first_read_faults_blocks(self):
        cache, origin = make_cache(b"0123456789abcdef", block_size=8)
        assert cache.read(0, 4) == b"0123"
        assert origin.reads == 1
        assert cache.misses == 1

    def test_repeat_read_hits(self):
        cache, origin = make_cache(b"0123456789abcdef", block_size=8)
        cache.read(0, 4)
        cache.read(2, 4)
        assert origin.reads == 1
        assert cache.hits == 1

    def test_read_spanning_blocks(self):
        cache, origin = make_cache(b"0123456789abcdef", block_size=4)
        assert cache.read(2, 8) == b"23456789"
        assert origin.reads == 3  # blocks 0,1,2

    def test_read_past_origin_end_is_short(self):
        cache, _ = make_cache(b"short", block_size=8)
        assert cache.read(0, 100) == b"short"
        assert cache.read(5, 10) == b""

    def test_short_fetch_sets_known_end(self):
        cache, origin = make_cache(b"0123456789", block_size=8)
        cache.read(0, 10)
        # reads entirely past the end don't re-fetch
        origin.reads = 0
        assert cache.read(50, 10) == b""
        assert origin.reads == 0

    def test_zero_and_negative_sizes(self):
        cache, _ = make_cache(b"abc")
        assert cache.read(0, 0) == b""
        assert cache.read(-1, 5) == b""


class TestWrites:
    def test_write_through(self):
        cache, origin = make_cache(b"00000000", block_size=4)
        cache.write(2, b"XY")
        assert origin.body.getvalue() == b"00XY0000"
        assert origin.writes == 1

    def test_write_updates_cached_block(self):
        cache, origin = make_cache(b"00000000", block_size=8)
        cache.read(0, 8)
        cache.write(0, b"ZZ")
        origin.reads = 0
        assert cache.read(0, 8) == b"ZZ000000"
        assert origin.reads == 0  # served from cache

    def test_full_block_write_becomes_valid_without_fetch(self):
        cache, origin = make_cache(b"0" * 16, block_size=8)
        cache.write(0, b"A" * 8)
        origin.reads = 0
        assert cache.read(0, 8) == b"A" * 8
        assert origin.reads == 0

    def test_partial_write_to_uncached_block_stays_invalid(self):
        cache, origin = make_cache(b"00000000", block_size=8)
        cache.write(2, b"XY")  # partial, block not cached
        assert cache.read(0, 8) == b"00XY0000"
        assert origin.reads == 1  # had to fetch on read

    def test_write_extends_known_end(self):
        cache, origin = make_cache(b"abc", block_size=4)
        cache.read(0, 3)            # learns end = 3
        cache.write(3, b"defg")     # extends origin
        assert cache.read(0, 7) == b"abcdefg"

    def test_empty_write(self):
        cache, origin = make_cache(b"abc")
        assert cache.write(1, b"") == 0
        assert origin.body.getvalue() == b"abc"


class TestEviction:
    def test_lru_bound_respected(self):
        cache, origin = make_cache(bytes(range(64)), block_size=8,
                                   max_blocks=2)
        cache.read(0, 8)
        cache.read(8, 8)
        cache.read(16, 8)
        assert cache.cached_blocks == 2

    def test_lru_evicts_least_recent(self):
        cache, origin = make_cache(bytes(64), block_size=8, max_blocks=2)
        cache.read(0, 8)   # block 0
        cache.read(8, 8)   # block 1
        cache.read(0, 8)   # touch block 0
        cache.read(16, 8)  # block 2 -> evicts block 1
        origin.reads = 0
        cache.read(0, 8)
        assert origin.reads == 0    # block 0 still cached
        cache.read(8, 8)
        assert origin.reads == 1    # block 1 was evicted


class TestInvalidation:
    def test_full_invalidate_refetches(self):
        cache, origin = make_cache(b"version one....", block_size=16)
        assert cache.read(0, 11) == b"version one"
        origin.body.setvalue(b"version two....")
        cache.invalidate()
        assert cache.read(0, 11) == b"version two"

    def test_range_invalidate(self):
        cache, origin = make_cache(bytes(32), block_size=8)
        cache.read(0, 32)
        fetched_before = origin.reads
        cache.invalidate(offset=8, size=8)  # only block 1
        cache.read(0, 32)
        assert origin.reads == fetched_before + 1


class TestValidation:
    def test_bad_block_size(self):
        with pytest.raises(CacheError):
            BlockCache(fetch=lambda o, s: b"", push=lambda o, d: 0,
                       store=MemoryDataPart(), block_size=0)

    def test_bad_max_blocks(self):
        with pytest.raises(CacheError):
            BlockCache(fetch=lambda o, s: b"", push=lambda o, d: 0,
                       store=MemoryDataPart(), max_blocks=0)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(body=st.binary(min_size=1, max_size=200),
           block_size=st.sampled_from([1, 3, 8, 16]),
           reads=st.lists(st.tuples(st.integers(0, 220), st.integers(0, 64)),
                          max_size=10))
    def test_cached_reads_match_origin(self, body, block_size, reads):
        cache, origin = make_cache(body, block_size=block_size)
        for offset, size in reads:
            assert cache.read(offset, size) == body[offset:offset + size]

    @settings(max_examples=60, deadline=None)
    @given(block_size=st.sampled_from([2, 4, 8]),
           ops=st.lists(
               st.one_of(
                   st.tuples(st.just("r"), st.integers(0, 64), st.integers(0, 24)),
                   st.tuples(st.just("w"), st.integers(0, 64),
                             st.binary(min_size=1, max_size=16)),
               ), max_size=14))
    def test_mixed_ops_match_reference(self, block_size, ops):
        body = b"0123456789" * 3
        cache, origin = make_cache(body, block_size=block_size)
        reference = ByteBuffer(body)
        for op in ops:
            if op[0] == "r":
                _, offset, size = op
                expected = reference.read_at(offset, size)
                assert cache.read(offset, size) == expected
            else:
                _, offset, data = op
                cache.write(offset, data)
                reference.write_at(offset, data)
        assert origin.body.getvalue() == reference.getvalue()
