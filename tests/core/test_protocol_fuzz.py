"""Adversarial fuzzing of the control protocol and dispatcher.

The dispatch loop must never die, whatever garbage arrives — one bad
operation cannot take the file down (and in the child-process runner, a
dead loop would strand the application)."""

from hypothesis import given, settings, strategies as st

from repro.core.control import decode_message, encode_message
from repro.core.dispatch import SentinelDispatcher
from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import FrameError

# arbitrary JSON-able field dictionaries
json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-2**31, 2**31)
    | st.floats(allow_nan=False, allow_infinity=False) | st.text(max_size=20),
    lambda inner: st.lists(inner, max_size=4)
    | st.dictionaries(st.text(max_size=8), inner, max_size=4),
    max_leaves=10,
)
field_dicts = st.dictionaries(st.text(max_size=12), json_values, max_size=6)


class TestDispatcherNeverDies:
    @settings(max_examples=200, deadline=None)
    @given(fields=field_dicts, payload=st.binary(max_size=64))
    def test_arbitrary_commands_yield_responses(self, fields, payload):
        dispatcher = SentinelDispatcher(Sentinel(), SentinelContext())
        out_fields, out_payload = dispatcher.execute(fields, payload)
        assert isinstance(out_fields, dict)
        assert "ok" in out_fields
        assert isinstance(out_payload, bytes)
        # and the loop still works afterwards
        ok_fields, _ = dispatcher.execute({"cmd": "size"}, b"")
        assert ok_fields["ok"] is True

    @settings(max_examples=200, deadline=None)
    @given(cmd=st.sampled_from(["read", "write", "truncate", "size",
                                "flush", "control", "close", "zap"]),
           fields=field_dicts, payload=st.binary(max_size=64))
    def test_known_commands_with_garbage_arguments(self, cmd, fields,
                                                   payload):
        dispatcher = SentinelDispatcher(Sentinel(), SentinelContext())
        out_fields, _ = dispatcher.execute({**fields, "cmd": cmd}, payload)
        assert isinstance(out_fields.get("ok"), bool)


class TestCodecFuzz:
    @settings(max_examples=300, deadline=None)
    @given(blob=st.binary(max_size=256))
    def test_decode_never_crashes_unexpectedly(self, blob):
        try:
            fields, payload = decode_message(blob)
        except FrameError:
            return  # the one sanctioned failure mode
        assert isinstance(fields, dict)
        assert isinstance(payload, bytes)

    @settings(max_examples=200, deadline=None)
    @given(fields=field_dicts, payload=st.binary(max_size=128))
    def test_encode_decode_roundtrip_arbitrary_json(self, fields, payload):
        out_fields, out_payload = decode_message(
            encode_message(fields, payload))
        assert out_fields == fields
        assert out_payload == payload

    @settings(max_examples=100, deadline=None)
    @given(blob=st.binary(min_size=1, max_size=128),
           flip=st.integers(0, 127))
    def test_bitflipped_valid_frames_fail_cleanly(self, blob, flip):
        valid = encode_message({"cmd": "read", "offset": 0, "size": 4},
                               blob)
        corrupted = bytearray(valid)
        corrupted[flip % len(corrupted)] ^= 0xFF
        try:
            fields, payload = decode_message(bytes(corrupted))
        except FrameError:
            return
        # if it still parsed, it must be structurally sound
        assert isinstance(fields, dict)
        assert isinstance(payload, bytes)
