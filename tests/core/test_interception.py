"""Tests for the mediating-connectors (open interception) layer."""

import builtins
import io

import pytest

from repro.core import Container, MediatingConnector
from repro.errors import InterceptionError

NULL = "repro.sentinels.null:NullFilterSentinel"


class TestInstallation:
    def test_install_uninstall_restores(self):
        original = builtins.open
        connector = MediatingConnector()
        connector.install()
        assert builtins.open is not original
        connector.uninstall()
        assert builtins.open is original

    def test_double_install_rejected(self):
        connector = MediatingConnector()
        with connector:
            with pytest.raises(InterceptionError):
                connector.install()

    def test_uninstall_without_install_rejected(self):
        with pytest.raises(InterceptionError):
            MediatingConnector().uninstall()

    def test_refuses_to_clobber_foreign_hook(self):
        connector = MediatingConnector()
        connector.install()
        foreign = lambda *a, **k: None  # noqa: E731
        saved = builtins.open
        builtins.open = foreign
        try:
            with pytest.raises(InterceptionError):
                connector.uninstall()
        finally:
            builtins.open = saved
            connector.uninstall()

    def test_nested_scopes_of_two_connectors(self, make_active):
        path = make_active(NULL, data=b"inner")
        outer, inner = MediatingConnector(), MediatingConnector()
        with outer:
            with inner:
                with open(path, "rb") as stream:
                    assert stream.read() == b"inner"
            # outer still installed and functional
            with open(path, "rb") as stream:
                assert stream.read() == b"inner"


class TestTransparency:
    """Legacy code calling plain open() gets active files unmodified."""

    def legacy_word_count(self, filename):
        """A 'legacy application': knows nothing about active files."""
        with open(filename) as stream:
            return sum(len(line.split()) for line in stream)

    def test_legacy_text_reader(self, make_active):
        path = make_active(NULL, data=b"one two three\nfour five\n")
        with MediatingConnector():
            assert self.legacy_word_count(path) == 5

    def test_passive_files_unaffected(self, tmp_path):
        plain = tmp_path / "plain.txt"
        plain.write_text("hello there\n")
        connector = MediatingConnector()
        with connector:
            assert self.legacy_word_count(str(plain)) == 2
        assert connector.intercepted_opens == 0

    def test_intercepted_counter(self, make_active):
        path = make_active(NULL, data=b"x")
        connector = MediatingConnector()
        with connector:
            with open(path, "rb") as stream:
                stream.read()
        assert connector.intercepted_opens == 1

    def test_binary_mode(self, make_active):
        path = make_active(NULL, data=b"\x00\x01\x02")
        with MediatingConnector():
            with open(path, "rb") as stream:
                assert stream.read() == b"\x00\x01\x02"

    def test_text_write_mode(self, make_active):
        path = make_active(NULL, data=b"old old old")
        with MediatingConnector():
            with open(path, "w") as stream:
                stream.write("fresh")
        assert Container.load(path).data == b"fresh"

    def test_append_text(self, make_active):
        path = make_active(NULL, data=b"start;")
        with MediatingConnector():
            with open(path, "a") as stream:
                stream.write("more")
        assert Container.load(path).data == b"start;more"

    def test_readline_and_iteration(self, make_active):
        path = make_active(NULL, data=b"a\nbb\nccc\n")
        with MediatingConnector():
            with open(path) as stream:
                assert stream.readline() == "a\n"
                assert list(stream) == ["bb\n", "ccc\n"]

    def test_encoding_honoured(self, make_active):
        path = make_active(NULL, data="naïve".encode("latin-1"))
        with MediatingConnector():
            with open(path, encoding="latin-1") as stream:
                assert stream.read() == "naïve"

    def test_json_load_works(self, make_active):
        import json

        path = make_active(NULL, data=b'{"answer": 42}')
        with MediatingConnector():
            with open(path) as stream:
                assert json.load(stream) == {"answer": 42}

    def test_binary_mode_with_encoding_rejected(self, make_active):
        path = make_active(NULL, data=b"x")
        with MediatingConnector():
            with pytest.raises(ValueError):
                open(path, "rb", encoding="utf-8")

    def test_nonexistent_af_path_falls_through(self, tmp_path):
        with MediatingConnector():
            with pytest.raises(FileNotFoundError):
                open(tmp_path / "ghost.af")

    def test_file_descriptor_open_falls_through(self, tmp_path):
        import os

        plain = tmp_path / "fd.txt"
        plain.write_text("via fd")
        fd = os.open(plain, os.O_RDONLY)
        with MediatingConnector():
            with open(fd) as stream:
                assert stream.read() == "via fd"

    def test_generated_file_through_interception(self, make_active):
        path = make_active("repro.sentinels.generate:CounterSentinel",
                           params={"width": 3, "count": 4},
                           meta={"data": "memory"})
        with MediatingConnector():
            with open(path) as stream:
                assert stream.readlines() == ["000\n", "001\n", "002\n", "003\n"]

    def test_strategy_selection(self, make_active):
        path = make_active(NULL, data=b"via thread")
        with MediatingConnector(strategy="thread"):
            with open(path, "rb") as stream:
                assert stream.read() == b"via thread"


class TestWrapForMode:
    def test_text_wrapper_type(self, make_active):
        path = make_active(NULL, data=b"t")
        with MediatingConnector():
            with open(path) as stream:
                assert isinstance(stream, io.TextIOWrapper)

    def test_binary_read_is_buffered(self, make_active):
        path = make_active(NULL, data=b"t")
        with MediatingConnector():
            with open(path, "rb") as stream:
                assert isinstance(stream, io.BufferedReader)
