"""Tests for data parts and cross-open synchronization."""

import threading

import pytest

from repro.core.container import Container
from repro.core.datapart import ContainerDataPart, MemoryDataPart
from repro.core.spec import SentinelSpec
from repro.core.sync import FileLock, SharedState, shared_state_for

SPEC = SentinelSpec("repro.sentinels.null:NullFilterSentinel")


class TestMemoryDataPart:
    def test_basic_io(self):
        part = MemoryDataPart(b"abc")
        assert part.read_at(0, 3) == b"abc"
        part.write_at(3, b"def")
        assert part.size == 6
        assert part.getvalue() == b"abcdef"

    def test_flush_is_noop(self):
        part = MemoryDataPart(b"x")
        part.flush()
        part.close()
        assert part.getvalue() == b"x"

    def test_truncate_and_setvalue(self):
        part = MemoryDataPart(b"abcdef")
        part.truncate(2)
        assert part.getvalue() == b"ab"
        part.setvalue(b"zz")
        assert part.getvalue() == b"zz"


class TestContainerDataPart:
    @pytest.fixture
    def container(self, tmp_path):
        return Container.create(tmp_path / "f.af", SPEC, data=b"initial")

    def test_loads_segment(self, container):
        part = ContainerDataPart(container)
        assert part.read_at(0, 7) == b"initial"

    def test_dirty_flush_persists(self, container):
        part = ContainerDataPart(container)
        part.write_at(0, b"INITIAL")
        # not yet on disk
        assert Container.load(container.path).data == b"initial"
        part.flush()
        assert Container.load(container.path).data == b"INITIAL"

    def test_clean_flush_does_not_rewrite(self, container):
        part = ContainerDataPart(container)
        mtime = container.path.stat().st_mtime_ns
        part.flush()
        assert container.path.stat().st_mtime_ns == mtime

    def test_close_flushes(self, container):
        part = ContainerDataPart(container)
        part.write_at(0, b"X")
        part.close()
        assert Container.load(container.path).data == b"Xnitial"

    def test_truncate_marks_dirty(self, container):
        part = ContainerDataPart(container)
        part.truncate(3)
        part.flush()
        assert Container.load(container.path).data == b"ini"

    def test_reload_sees_external_writes(self, container):
        part = ContainerDataPart(container)
        Container.load(container.path).write_data(b"external")
        part.reload()
        assert part.getvalue() == b"external"

    def test_reload_discards_local_dirty_state(self, container):
        part = ContainerDataPart(container)
        part.write_at(0, b"LOCAL")
        part.reload()
        assert part.getvalue() == b"initial"
        part.flush()  # reload cleared dirty; nothing written
        assert Container.load(container.path).data == b"initial"


class TestFileLock:
    def test_reentrant_within_thread(self, tmp_path):
        lock = FileLock(tmp_path / "t")
        with lock:
            with lock:
                pass
        lock.close()

    def test_mutual_exclusion_across_threads(self, tmp_path):
        results = []
        barrier = threading.Barrier(2)

        def worker(tag):
            lock = FileLock(tmp_path / "t")  # separate fd per thread
            barrier.wait()
            with lock:
                results.append(("enter", tag))
                results.append(("exit", tag))
            lock.close()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # entries and exits strictly alternate: no interleaving
        assert [kind for kind, _ in results] == ["enter", "exit", "enter", "exit"]

    def test_lock_sidecar_path(self, tmp_path):
        lock = FileLock(tmp_path / "file.af")
        with lock:
            assert (tmp_path / "file.af.lock").exists()
        lock.close()


class TestSharedState:
    def test_registry_returns_same_state_for_same_path(self, tmp_path):
        target = tmp_path / "x.af"
        target.touch()
        assert shared_state_for(target) is shared_state_for(str(target))

    def test_registry_distinct_per_path(self, tmp_path):
        (tmp_path / "a").touch()
        (tmp_path / "b").touch()
        assert shared_state_for(tmp_path / "a") is not shared_state_for(tmp_path / "b")

    def test_update_with_is_atomic(self):
        state = SharedState()
        errors = []

        def bump():
            try:
                for _ in range(500):
                    state.update_with("n", lambda v: v + 1, default=0)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert state.get("n") == 2000

    def test_setdefault(self):
        state = SharedState()
        assert state.setdefault("k", 1) == 1
        assert state.setdefault("k", 2) == 1
