"""Tests for the stream-to-random-access adapter (§5 future work)."""

import pytest

from repro.core import create_active, open_active
from repro.core.adapter import StreamAdapterSentinel, adapt_spec
from repro.core.sentinel import SentinelContext, StreamSentinel
from repro.core.spec import SentinelSpec
from repro.errors import SpecError, UnsupportedOperationError

ADAPTER = "repro.core.adapter:StreamAdapterSentinel"


class TickerStream(StreamSentinel):
    """A finite stream sentinel written purely in the §4.1 model."""

    def __init__(self, params=None):
        super().__init__(params)
        self.lines = int(self.params.get("lines", 5))
        self.consumed = []

    def generate(self, ctx):
        for i in range(self.lines):
            yield f"tick {i:03d}\n".encode()

    def consume(self, ctx, data, offset):
        self.consumed.append(data)
        return len(data)


class EndlessStream(StreamSentinel):
    endless = True

    def generate(self, ctx):
        i = 0
        while True:
            yield f"{i}|".encode()
            i += 1


class WriteOnlyStream(StreamSentinel):
    """Uses the default (rejecting) consume."""

    def generate(self, ctx):
        yield b"output only"


def make_adapted(target, params=None, **adapter_params):
    spec = SentinelSpec(ADAPTER, {"target": target, "params": params or {},
                                  **adapter_params})
    sentinel = spec.instantiate()
    ctx = SentinelContext()
    sentinel.on_open(ctx)
    return sentinel, ctx


class TestAdapterDirect:
    def test_sequential_reads(self):
        sentinel, ctx = make_adapted(f"{__name__}:TickerStream")
        assert sentinel.on_read(ctx, 0, 9) == b"tick 000\n"
        assert sentinel.on_read(ctx, 9, 9) == b"tick 001\n"

    def test_random_read_spools_forward(self):
        sentinel, ctx = make_adapted(f"{__name__}:TickerStream")
        # jump straight to the 4th record without reading the first three
        assert sentinel.on_read(ctx, 27, 9) == b"tick 003\n"
        # earlier data still available (it was spooled)
        assert sentinel.on_read(ctx, 0, 4) == b"tick"

    def test_read_past_end_is_short(self):
        sentinel, ctx = make_adapted(f"{__name__}:TickerStream",
                                     {"lines": 2})
        assert sentinel.on_read(ctx, 0, 1000) == b"tick 000\ntick 001\n"

    def test_size_of_finite_stream(self):
        sentinel, ctx = make_adapted(f"{__name__}:TickerStream", {"lines": 3})
        assert sentinel.on_size(ctx) == 27

    def test_size_of_endless_stream_is_unbounded(self):
        from repro.sentinels.generate import UNBOUNDED_SIZE

        sentinel, ctx = make_adapted(f"{__name__}:EndlessStream")
        assert sentinel.on_size(ctx) == UNBOUNDED_SIZE

    def test_spool_limit_guards_endless_streams(self):
        sentinel, ctx = make_adapted(f"{__name__}:EndlessStream",
                                     spool_limit=256)
        with pytest.raises(UnsupportedOperationError):
            sentinel.on_read(ctx, 1000, 10)

    def test_sequential_writes_forwarded(self):
        sentinel, ctx = make_adapted(f"{__name__}:TickerStream")
        assert sentinel.on_write(ctx, 0, b"abc") == 3
        assert sentinel.on_write(ctx, 3, b"def") == 3
        assert sentinel.inner.consumed == [b"abc", b"def"]

    def test_non_sequential_write_rejected(self):
        sentinel, ctx = make_adapted(f"{__name__}:TickerStream")
        sentinel.on_write(ctx, 0, b"abc")
        with pytest.raises(UnsupportedOperationError):
            sentinel.on_write(ctx, 100, b"xyz")

    def test_write_to_write_rejecting_stream(self):
        sentinel, ctx = make_adapted(f"{__name__}:WriteOnlyStream")
        with pytest.raises(UnsupportedOperationError):
            sentinel.on_write(ctx, 0, b"in")

    def test_truncate_rejected(self):
        sentinel, ctx = make_adapted(f"{__name__}:TickerStream")
        with pytest.raises(UnsupportedOperationError):
            sentinel.on_truncate(ctx, 0)

    def test_stats_control_op(self):
        sentinel, ctx = make_adapted(f"{__name__}:TickerStream")
        sentinel.on_read(ctx, 0, 9)
        fields, _ = sentinel.on_control(ctx, "adapter_stats", {}, b"")
        assert fields["spooled"] >= 9

    def test_requires_target(self):
        with pytest.raises(SpecError):
            StreamAdapterSentinel({})

    def test_rejects_non_stream_target(self):
        with pytest.raises(SpecError, match="not a StreamSentinel"):
            StreamAdapterSentinel(
                {"target": "repro.sentinels.null:NullFilterSentinel"}
            )


class TestAdaptSpec:
    def test_adapt_spec_wraps(self):
        original = SentinelSpec(f"{__name__}:TickerStream", {"lines": 2})
        adapted = adapt_spec(original)
        assert adapted.target == ADAPTER
        assert adapted.params["target"] == f"{__name__}:TickerStream"
        assert adapted.params["params"] == {"lines": 2}


class TestAdapterUnderRandomAccessStrategies:
    """The point of the translation: stream sentinels gain seek/size."""

    @pytest.mark.parametrize("strategy", ["inproc", "thread",
                                          "process-control"])
    def test_stream_sentinel_now_seekable(self, tmp_path, strategy):
        path = tmp_path / "adapted.af"
        create_active(path, adapt_spec(
            SentinelSpec(f"{__name__}:TickerStream", {"lines": 10})
        ), meta={"data": "memory"})
        with open_active(str(path), "rb", strategy=strategy) as stream:
            assert stream.seekable()
            stream.seek(18)
            assert stream.read(9) == b"tick 002\n"
            assert stream.getsize() == 90

    def test_same_sentinel_still_works_under_bare_pipes(self, tmp_path):
        """Unadapted, the stream sentinel serves the §4.1 strategy."""
        path = tmp_path / "plain.af"
        create_active(path, f"{__name__}:TickerStream",
                      params={"lines": 3}, meta={"data": "memory"})
        with open_active(str(path), "rb", strategy="process") as stream:
            assert stream.read() == b"tick 000\ntick 001\ntick 002\n"
