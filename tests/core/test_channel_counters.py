"""ChannelCounters conservation: racing requests never lose a tally.

Satellite (ISSUE PR 4): under concurrent request traffic the transport
counters must conserve — every request started is eventually settled or
withdrawn, ``in_flight`` drains to zero, and the serving side counts
exactly what arrived.  Plus: the *telemetry view* of the counters
survives a host respawn (the app-side counters are the continuity).
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import create_active, open_active
from repro.core.channel import LocalChannel
from repro.core.faults import FaultPlane
from repro.core.policy import Deadline
from repro.core.telemetry import TELEMETRY

NULL = "repro.sentinels.null:NullFilterSentinel"


def _echo_pair(name):
    app, peer = LocalChannel.pair(name)
    peer.register(1, lambda fields, payload: ({"ok": True}, payload))
    return app, peer


class TestConservationUnderRaces:
    def test_threaded_tallies_conserve(self):
        app, peer = _echo_pair("counters-race")
        errors = []

        def worker(n):
            try:
                for i in range(50):
                    app.request(1, {"cmd": f"op{n % 4}"}, b"x" * (i % 7))
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        sent_side = app.counters.snapshot()
        served_side = peer.counters.snapshot()
        assert sent_side["requests_sent"] == 8 * 50
        # conservation: started == settled + withdrawn (all settled here)
        assert sent_side["replies_received"] \
            + sent_side["requests_failed"] == sent_side["requests_sent"]
        assert sent_side["in_flight"] == 0
        assert served_side["requests_served"] == sent_side["requests_sent"]
        per_op_total = sum(rec["count"]
                           for rec in sent_side["per_op"].values())
        assert per_op_total == sent_side["requests_sent"]
        app.close()
        peer.close()

    def test_withdrawn_requests_count_as_failed(self):
        app, peer = LocalChannel.pair("counters-withdraw")
        gate = threading.Event()
        peer.register(1, lambda fields, payload:
                      (gate.wait(5) and None) or ({"ok": True}, b""))
        try:
            try:
                app.request(1, {"cmd": "slow"}, b"",
                            timeout=Deadline.after(0.05))
            except TimeoutError:
                pass
            gate.set()
            deadline = Deadline.after(2.0)
            while app.counters.snapshot()["in_flight"] and \
                    not deadline.expired():
                pass
            snap = app.counters.snapshot()
            assert snap["requests_failed"] >= 1
            assert snap["replies_received"] + snap["requests_failed"] \
                == snap["requests_sent"]
        finally:
            gate.set()
            app.close()
            peer.close()

    @settings(max_examples=20, deadline=None)
    @given(ops=st.lists(st.tuples(st.sampled_from(["read", "write", "stat"]),
                                  st.integers(0, 64)),
                        min_size=1, max_size=40))
    def test_sequential_op_mix_conserves(self, ops):
        app, peer = _echo_pair("counters-hyp")
        try:
            for op, size in ops:
                app.request(1, {"cmd": op}, b"z" * size)
            snap = app.counters.snapshot()
            assert snap["requests_sent"] == len(ops)
            assert snap["replies_received"] == len(ops)
            assert snap["requests_failed"] == 0
            assert snap["in_flight"] == 0
            assert snap["bytes_sent"] == sum(size for _, size in ops)
            assert peer.counters.snapshot()["requests_served"] == len(ops)
        finally:
            app.close()
            peer.close()


class TestCountersSurviveRespawn:
    def test_telemetry_view_continuous_across_respawn(self, tmp_path):
        path = str(tmp_path / "respawn.af")
        create_active(path, NULL, data=b"s" * 64)
        plane = FaultPlane(seed=3)
        plane.kill_host(after=0, times=1)
        with open_active(path, "rb", strategy="process-control") as stream:
            assert stream.read(8) == b"s" * 8
            pre_crash_reads = stream.stats.reads
            plane.arm_host(stream.session.host)
            assert stream.read(8) == b"s" * 8       # crash + respawn here
            assert stream.session._lease.respawns >= 1
            assert stream.read(8) == b"s" * 8       # and life goes on
            assert stream.stats.reads == pre_crash_reads + 2

            snap = TELEMETRY.snapshot()
            entry = next(s for key, s in snap["files"].items()
                         if key.startswith(path))
            assert entry["reads"] == stream.stats.reads
            # the respawned connection's counters roll into the totals
            assert snap["transport"]["totals"]["requests_sent"] >= 3
            assert snap["transport"]["totals"]["in_flight"] == 0
