"""Vectored (scatter/gather) I/O across the control strategies.

ReadFileScatter/WriteFileGather travel as single ``readv``/``writev``
exchanges on the channel strategies instead of one round trip per
buffer; these tests pin down the semantics on every strategy with a
control channel, so the wire paths (thread, process-control) and the
inline path (inproc) stay interchangeable.
"""

import pytest

from repro.core import open_active
from repro.errors import UnsupportedOperationError
from tests.conftest import CONTROL_STRATEGIES

NULL = "repro.sentinels.null:NullFilterSentinel"


@pytest.mark.parametrize("strategy", CONTROL_STRATEGIES)
class TestScatterGather:
    def test_scatter_read(self, make_active, strategy):
        path = make_active(NULL, data=b"aabbccddee")
        with open_active(path, "rb", strategy=strategy) as stream:
            assert stream.read_scatter([2, 3, 4]) == [b"aa", b"bbc", b"cdde"]
            assert stream.tell() == 9
            assert stream.read() == b"e"

    def test_scatter_read_hits_eof(self, make_active, strategy):
        path = make_active(NULL, data=b"abcdef")
        with open_active(path, "rb", strategy=strategy) as stream:
            # a short extent ends the sequence, like consecutive reads
            assert stream.read_scatter([4, 4, 4]) == [b"abcd", b"ef", b""]
            assert stream.tell() == 6

    def test_gather_write(self, make_active, strategy):
        path = make_active(NULL, data=b"..........")
        with open_active(path, "r+b", strategy=strategy) as stream:
            assert stream.write_gather([b"XX", b"YYY", b"Z"]) == 6
            assert stream.tell() == 6
            stream.seek(0)
            assert stream.read(10) == b"XXYYYZ...."

    def test_gather_write_accepts_views(self, make_active, strategy):
        path = make_active(NULL, data=b"0" * 8)
        with open_active(path, "r+b", strategy=strategy) as stream:
            stream.write_gather([memoryview(b"ab"), bytearray(b"cd")])
            stream.seek(0)
            assert stream.read(4) == b"abcd"

    def test_large_batch_chunks_transparently(self, make_active, strategy):
        body = bytes(range(256)) * 64  # 16 KiB
        path = make_active(NULL, data=body)
        with open_active(path, "rb", strategy=strategy) as stream:
            parts = stream.read_scatter([4096] * 4)
            assert b"".join(parts) == body

    def test_vectored_stats_count_per_buffer(self, make_active, strategy):
        path = make_active(NULL, data=b"x" * 12)
        with open_active(path, "r+b", strategy=strategy) as stream:
            stream.read_scatter([4, 4])
            stream.write_gather([b"ab", b"cd"])
            assert stream.stats.reads == 2
            assert stream.stats.writes == 2
            assert stream.stats.bytes_read == 8
            assert stream.stats.bytes_written == 4


class TestNonSeekableRejection:
    def test_scatter_requires_random_access(self, make_active):
        path = make_active(NULL, data=b"abcdef")
        with open_active(path, "rb", strategy="process") as stream:
            with pytest.raises(UnsupportedOperationError):
                stream.read_scatter([2, 2])

    def test_gather_requires_random_access(self, make_active):
        path = make_active(NULL, data=b"abcdef")
        with open_active(path, "r+b", strategy="process") as stream:
            with pytest.raises(UnsupportedOperationError):
                stream.write_gather([b"xy"])

    def test_append_rejected_at_open_without_random_access(self, make_active):
        # Fail before the application writes anything in the belief it
        # is appending; the session is released, not leaked.
        path = make_active(NULL, data=b"log:")
        with pytest.raises(UnsupportedOperationError):
            open_active(path, "ab", strategy="process")


class TestReadinto:
    @pytest.mark.parametrize("strategy", CONTROL_STRATEGIES)
    def test_direct_fill(self, make_active, strategy):
        path = make_active(NULL, data=b"0123456789")
        with open_active(path, "rb", strategy=strategy) as stream:
            buffer = bytearray(4)
            assert stream.readinto(buffer) == 4
            assert bytes(buffer) == b"0123"
            assert stream.readinto(buffer) == 4
            assert bytes(buffer) == b"4567"
            assert stream.readinto(buffer) == 2
            assert bytes(buffer[:2]) == b"89"
