"""Unit tests for the telemetry plane (spans, metrics, snapshot schema).

Every timing assertion runs against an injected fake clock — nothing
here depends on wall time.
"""

import gc
import json

import pytest

from repro.core.cache import BlockCache
from repro.core.channel import LocalChannel
from repro.core.datapart import MemoryDataPart
from repro.core.faults import FaultPlane
from repro.core.telemetry import (
    HISTOGRAM_BOUNDS,
    NULL_SPAN,
    TELEMETRY,
    TRANSPORT_TOTAL_KEYS,
    MetricsRegistry,
    Telemetry,
    render_snapshot,
    render_timeline,
)
from repro.net import Address, FileServer, Network


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


@pytest.fixture
def tel():
    return Telemetry(clock=FakeClock())


# -- spans ------------------------------------------------------------------


class TestSpans:
    def test_timing_uses_injected_clock(self, tel):
        span = tel.begin("op.read")
        tel.clock.advance(0.25)
        tel.finish(span)
        assert span.duration_us == pytest.approx(250_000.0)
        assert span.status == "ok"

    def test_nesting_defaults_to_current(self, tel):
        outer = tel.begin("outer", push=True)
        inner = tel.begin("inner")
        assert inner.trace == outer.trace
        assert inner.parent == outer.sid
        tel.finish(inner)
        tel.finish(outer)
        assert tel.current() is None

    def test_context_manager_marks_errors(self, tel):
        with pytest.raises(ValueError):
            with tel.span("app.write"):
                raise ValueError("boom")
        (span,) = tel.spans()
        assert span.status == "error"

    def test_event_is_zero_duration(self, tel):
        parent = tel.begin("op.read", push=True)
        tel.event("origin.retry", attrs={"cause": "transient"})
        tel.finish(parent)
        retry = next(s for s in tel.spans() if s.name == "origin.retry")
        assert retry.duration_us == 0.0
        assert retry.parent == parent.sid

    def test_buffer_bound_drops_oldest(self):
        tel = Telemetry(clock=FakeClock(), buffer_limit=4)
        for i in range(6):
            tel.finish(tel.begin(f"span{i}"))
        info = tel.snapshot()["spans"]
        assert info["buffered"] == 4
        assert info["dropped"] == 2
        assert [s.name for s in tel.spans()] == \
            ["span2", "span3", "span4", "span5"]

    def test_export_jsonl(self, tel, tmp_path):
        with tel.span("a"):
            with tel.span("b"):
                pass
        out = tmp_path / "spans.jsonl"
        assert tel.export_jsonl(out) == 2
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert {line["name"] for line in lines} == {"a", "b"}
        for line in lines:
            assert set(line) == {"trace", "sid", "parent", "name",
                                 "start_us", "end_us", "status", "attrs",
                                 "pid"}

    def test_null_span_is_a_noop_context(self):
        with NULL_SPAN as span:
            assert span is None

    def test_trace_tree_nests_children(self, tel):
        handle = tel.new_trace("file", attrs={"path": "x.af"})
        child = tel.begin("app.read", trace=handle.id, parent=handle.root)
        tel.finish(child)
        tel.finish(handle.root)
        tree = tel.trace_tree(handle.id)
        assert tree["name"] == "file"
        assert [c["name"] for c in tree["children"]] == ["app.read"]


class TestPiggyback:
    def test_collector_ships_and_ingest_rebases(self, tel):
        child = Telemetry(clock=FakeClock())
        child.clock.t = 500.0  # unrelated epoch: clocks must not matter
        collector = child.start_collect()
        span = child.begin("dispatch.read", trace="t1", parent="p1")
        child.clock.advance(0.001)
        child.finish(span)
        wire = child.end_collect(collector, anchor_us=span.start_us)
        assert wire[0]["t"] == 0.0 and wire[0]["e"] == pytest.approx(1000.0)

        anchor = tel.begin("frame.read")
        tel.clock.advance(0.002)
        tel.finish(anchor)
        tel.ingest(wire, anchor=anchor)
        shipped = next(s for s in tel.spans() if s.name == "dispatch.read")
        assert shipped.start_us == anchor.start_us
        assert shipped.duration_us == pytest.approx(1000.0)
        assert shipped.trace == "t1" and shipped.parent == "p1"

    def test_span_routes_to_sink_from_any_thread(self, tel):
        import threading

        collector = tel.start_collect()
        span = tel.begin("frame.read")
        tel.end_collect(collector, anchor_us=0.0)

        # Reopen a new collector; the span is bound to the *old* one,
        # which is closed — finishing must fall through to the buffer.
        worker = threading.Thread(target=tel.finish, args=(span,))
        worker.start()
        worker.join()
        assert span in tel.spans()

    def test_ingest_swallows_malformed_entries(self, tel):
        tel.ingest([{"nonsense": True}, 42], anchor=0.0)
        assert tel.spans() == []


# -- metrics ----------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("hosts.spawned").inc()
        registry.counter("hosts.spawned").inc(2)
        registry.gauge("hosts.pooled").set(3)
        snap = registry.snapshot()
        assert snap["global"]["hosts.spawned"] == 3
        assert snap["global"]["hosts.pooled"] == 3

    def test_scopes_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("sessions", scope="/a.af").inc()
        registry.counter("sessions", scope="/b.af").inc(5)
        snap = registry.snapshot()
        assert snap["scopes"]["/a.af"]["sessions"] == 1
        assert snap["scopes"]["/b.af"]["sessions"] == 5
        assert "sessions" not in snap["global"]

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            registry.gauge("x")

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("kept")
        counter.inc(9)
        registry.reset()
        assert counter.value == 0
        counter.inc()  # the holder's reference still feeds the registry
        assert registry.snapshot()["global"]["kept"] == 1

    def test_histogram_fixed_log_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("transport.latency.read")
        hist.observe(1e-6)     # exactly the first bound
        hist.observe(3e-6)     # between 2 µs and 4 µs
        hist.observe(1000.0)   # beyond the last bound: overflow bucket
        snap = hist.snap()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(1000.000004)
        assert snap["buckets"] == {"le_1e-06": 1, "le_4e-06": 1, "le_inf": 1}

    def test_bounds_are_wall_clock_free_constants(self):
        assert HISTOGRAM_BOUNDS[0] == 1e-6
        assert len(HISTOGRAM_BOUNDS) == 28
        assert all(b == 2 * a for a, b in zip(HISTOGRAM_BOUNDS,
                                              HISTOGRAM_BOUNDS[1:]))


# -- collector registry / snapshot schema -----------------------------------


class _Owner:
    """A weakref-able stand-in counter owner."""

    def __init__(self, payload):
        self.payload = payload

    def stats(self):
        return dict(self.payload)


class TestCollectorRegistry:
    def test_weakref_entry_dies_with_owner(self, tel):
        owner = _Owner({"hits": 1})
        key = tel.register_collector("cache", "c", owner, _Owner.stats)
        assert tel.snapshot()["cache"][key] == {"hits": 1}
        del owner
        gc.collect()
        assert tel.snapshot()["cache"] == {}

    def test_broken_collector_does_not_break_snapshot(self, tel):
        owner = _Owner(None)  # .stats() raises TypeError
        tel.register_collector("network", "bad", owner, _Owner.stats)
        assert tel.snapshot()["network"] == {}


class TestSnapshotSchema:
    """The acceptance contract: every pre-existing counter family shows
    up under ``snapshot()`` with stable keys."""

    TOP_KEYS = {"transport", "files", "cache", "network", "faults",
                "close_errors", "metrics", "spans"}

    def test_all_families_present_and_stable(self, make_active, tmp_path):
        from repro.core import open_active

        # Exercise one real member of each family in-process.
        network = Network()
        server = network.bind(Address("files.test", 7000), FileServer())
        server.put_file("/blob", b"data")
        plane = FaultPlane(seed=3)
        cache = BlockCache(fetch=lambda o, s: b"", push=lambda o, d: len(d),
                           store=MemoryDataPart())
        app, peer = LocalChannel.pair("schema-test")
        peer.register(1, lambda fields, payload: ({"ok": True}, payload))
        app.request(1, {"cmd": "read"}, b"x")
        app.counters.record_close_error("synthetic close failure")

        path = make_active("repro.sentinels.null:NullFilterSentinel",
                           data=b"hello")
        with open_active(path, "rb", strategy="inproc") as stream:
            stream.read()

        snap = TELEMETRY.snapshot()
        assert self.TOP_KEYS <= set(snap)

        transport = snap["transport"]
        assert set(transport) == {"connections", "totals"}
        assert set(transport["totals"]) == set(TRANSPORT_TOTAL_KEYS)
        assert transport["totals"]["requests_sent"] >= 1
        connection = next(s for key, s in transport["connections"].items()
                          if key.startswith("schema-test"))
        assert {"requests_sent", "replies_received", "per_op",
                "close_errors"} <= set(connection)

        file_entry = next(s for key, s in snap["files"].items()
                          if key.startswith(str(tmp_path)))
        assert {"reads", "writes", "bytes_read", "bytes_written"} \
            <= set(file_entry)

        cache_entry = next(iter(snap["cache"].values()))
        assert {"hits", "misses", "prefetch_issued", "prefetch_used",
                "coalesced_flushes", "dirty_bytes", "flush_failures"} \
            <= set(cache_entry)

        network_entry = next(iter(snap["network"].values()))
        assert {"requests", "bytes_sent", "bytes_received", "charged_us",
                "partitions", "heals", "partition_drops"} \
            <= set(network_entry)

        assert any(key.startswith("plane-seed-3") for key in snap["faults"])

        # Fault-plane firings leave durable faults.injected.* counters
        # behind (the per-plane "faults" family dies with its plane;
        # the counters are the stable chaos audit trail).
        plane.drop_frame(op="chaos-probe")
        plane.on_send({"cmd": "chaos-probe"})
        refreshed = TELEMETRY.snapshot()
        assert refreshed["metrics"]["global"].get(
            "faults.injected.send.drop", 0) >= 1

        assert set(snap["close_errors"]) == {"count", "last"}
        assert snap["close_errors"]["count"] >= 1
        assert set(snap["metrics"]) == {"global", "scopes"}
        assert set(snap["spans"]) == {"tracing", "buffered", "dropped"}

        # The registered latency histogram for the exercised op.
        assert "transport.latency.read" in snap["metrics"]["global"]

        app.close()
        peer.close()
        del cache, plane, network  # keep the weak collectors honest


# -- rendering --------------------------------------------------------------


class TestRendering:
    def test_timeline_indents_and_truncates(self, tel):
        with tel.span("app.read", attrs={"offset": 0}):
            for _ in range(3):
                tel.event("origin.retry")
        text = render_timeline(tel.spans(), limit=2)
        assert "span" in text.splitlines()[0]
        assert "app.read  [offset=0]" in text
        assert "... 2 more spans" in text
        assert render_timeline([]) == "(no spans recorded)"

    def test_snapshot_rendering_smoke(self, tel):
        tel.metrics.counter("hosts.spawned").inc()
        text = render_snapshot(tel.snapshot())
        assert "transport totals:" in text
        assert "hosts.spawned: 1" in text
        assert "spans: tracing=off" in text
