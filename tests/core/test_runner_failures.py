"""Failure injection for the sentinel host process.

PR 3 made the host transport *supervised*: a crashed host is detected,
respawned, and idempotent operations retry transparently after the
session's write journal is replayed.  These tests cover both faces:
recovery must be invisible when it is safe, and crashes must still
surface as typed errors when it is not (``meta={"supervise": False}``,
non-idempotent streams, retry exhaustion).
"""

import signal
import time

import pytest

from repro.core import create_active, open_active
from repro.errors import ChannelClosedError, SentinelCrashError, SpecError

NULL = "repro.sentinels.null:NullFilterSentinel"


class StallRead:
    """Importable sentinel whose reads stall long enough to be mid-flight
    when the host is torn down."""

    def __new__(cls, params):
        from repro.core.sentinel import Sentinel

        class Impl(Sentinel):
            def on_read(self, ctx, offset, size):
                time.sleep(float(self.params.get("delay", 0.3)))
                return ctx.data.read_at(offset, size)

        return Impl(params)


class NoisyCrash:
    """Importable sentinel that writes to stderr, then hard-crashes."""

    def __new__(cls, params):
        from repro.core.sentinel import Sentinel

        class Impl(Sentinel):
            def on_read(self, ctx, offset, size):
                import os
                import sys

                print("LAST WORDS from the sentinel", file=sys.stderr,
                      flush=True)
                os._exit(7)

        return Impl(params)


class CrashOnNthRead:
    """Importable sentinel that kills its own process mid-session."""

    def __new__(cls, params):
        from repro.core.sentinel import Sentinel

        class Impl(Sentinel):
            def __init__(self, p):
                super().__init__(p)
                self.reads = 0

            def on_read(self, ctx, offset, size):
                self.reads += 1
                if self.reads >= int(self.params.get("after", 1)):
                    import os

                    os._exit(41)  # simulate a hard sentinel crash
                return ctx.data.read_at(offset, size)

        return Impl(params)


class TestTransparentRecovery:
    def test_crash_mid_read_recovers(self, tmp_path):
        """A mid-session host crash is invisible to a sequential reader."""
        path = tmp_path / "crashy.af"
        create_active(path, f"{__name__}:CrashOnNthRead",
                      params={"after": 3}, data=b"0123456789")
        stream = open_active(str(path), "rb", strategy="process-control")
        out = b""
        for _ in range(5):
            out += stream.read(2)
        assert out == b"0123456789"  # byte-identical despite the crash
        assert stream.session._lease.respawns >= 1
        stream.close()

    def test_killed_child_respawns_on_next_op(self, tmp_path):
        path = tmp_path / "victim.af"
        create_active(path, NULL, data=b"x" * 64)
        stream = open_active(str(path), "rb", strategy="process-control")
        assert stream.read(4) == b"xxxx"
        proc = stream.session.host.proc
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=5)
        assert stream.read(4) == b"xxxx"  # respawn + retry, no error
        assert stream.session._lease.respawns == 1
        stream.close()

    def test_write_journal_replayed_after_crash(self, tmp_path):
        """Acked writes survive a crash: the journal replays on respawn."""
        path = tmp_path / "journal.af"
        create_active(path, NULL, data=b"\x00" * 16)
        stream = open_active(str(path), "r+b", strategy="process-control")
        stream.write(b"WRITTEN!")
        proc = stream.session.host.proc
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=5)
        stream.seek(0)
        assert stream.read(8) == b"WRITTEN!"
        assert stream.session._lease.respawns == 1
        stream.close()

    def test_unsupervised_crash_surfaces(self, tmp_path):
        """``meta={"supervise": False}`` restores fail-fast semantics."""
        path = tmp_path / "fragile.af"
        create_active(path, f"{__name__}:CrashOnNthRead",
                      params={"after": 3}, data=b"0123456789",
                      meta={"supervise": False})
        stream = open_active(str(path), "rb", strategy="process-control")
        assert stream.read(2) == b"01"
        assert stream.read(2) == b"23"
        with pytest.raises(SentinelCrashError):
            stream.read(2)
        with pytest.raises(SentinelCrashError):
            stream.close()

    def test_retry_exhaustion_surfaces_typed_crash(self, tmp_path):
        """A sentinel that crashes on every respawn exhausts the schedule."""
        path = tmp_path / "doomed.af"
        create_active(path, f"{__name__}:CrashOnNthRead",
                      params={"after": 1}, data=b"0123456789")
        stream = open_active(str(path), "rb", strategy="process-control")
        with pytest.raises(SentinelCrashError):
            stream.read(2)
        assert stream.session._lease.respawns >= 1


class TestChildCrash:
    def test_bad_spec_fails_at_open(self, tmp_path):
        path = tmp_path / "broken.af"
        # spec resolves to a module that import-errors in the host child;
        # the failure round-trips as a typed error response at open time
        create_active(path, "definitely.not.a.module:Sentinel")
        with pytest.raises(SpecError, match="definitely"):
            open_active(str(path), "rb", strategy="process-control")

    def test_crash_message_includes_stderr(self, tmp_path):
        path = tmp_path / "noisy.af"
        create_active(path, f"{__name__}:NoisyCrash", data=b"abc",
                      meta={"supervise": False})
        stream = open_active(str(path), "rb", strategy="process-control")
        with pytest.raises(SentinelCrashError) as excinfo:
            stream.read(1)
        message = str(excinfo.value)
        # stderr tail is drained asynchronously; give it a beat if empty
        for _ in range(20):
            if "LAST WORDS" in message:
                break
            time.sleep(0.05)
            message = stream.session.host.stderr_text()
        assert "LAST WORDS" in message
        with pytest.raises(SentinelCrashError):
            stream.close()

    def test_stream_strategy_child_crash(self, tmp_path):
        path = tmp_path / "crashy2.af"
        create_active(path, f"{__name__}:CrashOnNthRead",
                      params={"after": 1}, data=b"0123456789",
                      meta={"data": "memory", "supervise": False})
        stream = open_active(str(path), "rb", strategy="process")
        with pytest.raises(SentinelCrashError):
            # the pump dies before producing; EOF + nonzero exit
            data = stream.read(10)
            if not data:  # EOF race: surface the crash via close
                stream.close()

    def test_clean_eof_is_not_a_crash(self, tmp_path):
        path = tmp_path / "fine.af"
        create_active(path, NULL, data=b"short")
        with open_active(str(path), "rb", strategy="process") as stream:
            assert stream.read() == b"short"
            assert stream.read(10) == b""  # EOF, not an error


class TestShutdownOrdering:
    """Teardown can never leave a pending reply future unresolved."""

    def test_kill_mid_shutdown_leaves_no_hung_futures(self, tmp_path):
        """Killing a host with a pipeline of mid-flight ops fails every
        outstanding future promptly and drains the in-flight count."""
        path = tmp_path / "stall.af"
        create_active(path, f"{__name__}:StallRead",
                      params={"delay": 0.5}, data=b"y" * 64,
                      meta={"data": "memory", "supervise": False})
        stream = open_active(str(path), "rb", strategy="process-control")
        lease = stream.session._lease
        pendings = [lease.request_async(
            {"cmd": "read", "offset": 0, "size": 1}) for _ in range(8)]
        stream.session.host.mark_crashed("test: killed mid-shutdown")
        for pending in pendings:
            with pytest.raises((SentinelCrashError, ChannelClosedError)):
                pending.wait(5.0)
        assert lease.channel.counters.snapshot()["in_flight"] == 0
        with pytest.raises(SentinelCrashError):
            stream.close()

    def test_handler_raising_during_teardown_still_replies(self):
        """A handler dying with a BaseException (a teardown-grade
        failure like SystemExit) must still resolve the peer's future
        with an error reply rather than leaving it hanging."""
        from repro.core.channel import FIRST_SESSION_CHAN, LocalChannel

        app, srv = LocalChannel.pair("teardown")

        def dying_handler(fields, payload):
            raise SystemExit("sentinel tearing down")

        srv.register(FIRST_SESSION_CHAN, dying_handler)
        pending = app.request_async(FIRST_SESSION_CHAN, {"cmd": "read"})
        fields, _ = pending.wait(5.0)  # resolves; never hangs
        assert fields["ok"] is False
        assert fields["error_type"] == "SystemExit"
        assert app.counters.snapshot()["in_flight"] == 0
        app.close()

    def test_handler_raising_during_teardown_threads_mode(self, monkeypatch):
        """Same guarantee under the REPRO_HOST_MODE=threads fallback."""
        from repro.core.channel import FIRST_SESSION_CHAN, LocalChannel

        monkeypatch.setenv("REPRO_HOST_MODE", "threads")
        app, srv = LocalChannel.pair("teardown-threads")
        srv.register(FIRST_SESSION_CHAN,
                     lambda f, p: (_ for _ in ()).throw(
                         SystemExit("worker teardown")))
        pending = app.request_async(FIRST_SESSION_CHAN, {"cmd": "read"})
        fields, _ = pending.wait(5.0)
        assert fields["ok"] is False
        assert fields["error_type"] == "SystemExit"
        app.close()


class TestApplicationMisbehaviour:
    def test_close_without_reading_everything(self, tmp_path):
        """Abandoning a stream mid-read must not hang or error."""
        path = tmp_path / "big.af"
        create_active(path, NULL, data=b"z" * 300_000)
        stream = open_active(str(path), "rb", strategy="process")
        assert len(stream.read(10)) == 10
        stream.close()  # child blocked writing the rest; must unblock

    def test_immediate_close(self, tmp_path):
        path = tmp_path / "f.af"
        create_active(path, NULL, data=b"data")
        for strategy in ("process", "process-control"):
            stream = open_active(str(path), "rb", strategy=strategy)
            stream.close()

    def test_many_sequential_opens_no_fd_leak(self, tmp_path):
        import os

        from repro.core.runner import HOST_POOL

        path = tmp_path / "f.af"
        create_active(path, NULL, data=b"data")
        fd_dir = f"/proc/{os.getpid()}/fd"
        # A lingering pooled host holds its pipes/shm by design; drain
        # the pool at both sample points so only true leaks count.
        HOST_POOL.shutdown_all()
        before = len(os.listdir(fd_dir))
        for _ in range(10):
            with open_active(str(path), "rb",
                             strategy="process-control") as stream:
                stream.read(4)
        HOST_POOL.shutdown_all()
        after = len(os.listdir(fd_dir))
        assert after <= before + 4  # allowance for pytest bookkeeping
