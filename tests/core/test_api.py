"""Tests for the Win32-flavoured API veneer."""

import pytest

from repro.core.api import FILE_BEGIN, FILE_CURRENT, FILE_END, Win32Api
from repro.errors import HandleError, UnsupportedOperationError

NULL = "repro.sentinels.null:NullFilterSentinel"


@pytest.fixture
def api():
    return Win32Api(strategy="inproc")


class TestPassiveFiles:
    """The veneer serves ordinary files when the name isn't active."""

    def test_read_write_roundtrip(self, api, tmp_path):
        path = tmp_path / "plain.txt"
        handle = api.CreateFile(str(path), "w+b")
        assert api.WriteFile(handle, b"hello") == 5
        api.SetFilePointer(handle, 0, FILE_BEGIN)
        assert api.ReadFile(handle, 5) == b"hello"
        api.CloseHandle(handle)
        assert path.read_bytes() == b"hello"

    def test_getfilesize_preserves_position(self, api, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_bytes(b"0123456789")
        handle = api.CreateFile(str(path), "rb")
        api.SetFilePointer(handle, 4, FILE_BEGIN)
        assert api.GetFileSize(handle) == 10
        assert api.ReadFile(handle, 2) == b"45"
        api.CloseHandle(handle)

    def test_text_mode_coerced_to_binary(self, api, tmp_path):
        path = tmp_path / "t.txt"
        path.write_bytes(b"abc")
        handle = api.CreateFile(str(path), "r")
        assert api.ReadFile(handle, 3) == b"abc"
        api.CloseHandle(handle)


class TestActiveFiles:
    def test_active_file_indistinguishable(self, api, make_active):
        path = make_active(NULL, data=b"0123456789")
        handle = api.CreateFile(path, "r+b")
        assert api.ReadFile(handle, 4) == b"0123"
        api.SetFilePointer(handle, -2, FILE_END)
        assert api.ReadFile(handle, 2) == b"89"
        api.SetFilePointer(handle, 0, FILE_BEGIN)
        api.WriteFile(handle, b"XX")
        assert api.GetFileSize(handle) == 10
        api.FlushFileBuffers(handle)
        api.CloseHandle(handle)

    def test_openfile_alias(self, api, make_active):
        path = make_active(NULL, data=b"alias")
        handle = api.OpenFile(path, "rb")
        assert api.ReadFile(handle, 5) == b"alias"
        api.CloseHandle(handle)

    def test_seek_current(self, api, make_active):
        path = make_active(NULL, data=b"0123456789")
        handle = api.CreateFile(path, "rb")
        api.SetFilePointer(handle, 3, FILE_BEGIN)
        api.SetFilePointer(handle, 2, FILE_CURRENT)
        assert api.ReadFile(handle, 1) == b"5"
        api.CloseHandle(handle)

    def test_sniff_content_detects_renamed_containers(self, make_active,
                                                      tmp_path):
        import shutil

        source = make_active(NULL, data=b"hidden")
        disguised = tmp_path / "looks_plain.bin"
        shutil.copy(source, disguised)
        api = Win32Api(strategy="inproc", sniff_content=True)
        handle = api.CreateFile(str(disguised), "rb")
        assert api.ReadFile(handle, 6) == b"hidden"
        api.CloseHandle(handle)

    def test_scatter_read_on_seekable(self, api, make_active):
        path = make_active(NULL, data=b"aabbcc")
        handle = api.CreateFile(path, "rb")
        assert api.ReadFileScatter(handle, [2, 2, 2]) == [b"aa", b"bb", b"cc"]
        api.CloseHandle(handle)

    def test_scatter_read_dropped_on_process_strategy(self, make_active):
        api = Win32Api(strategy="process")
        path = make_active(NULL, data=b"aabbcc")
        handle = api.CreateFile(path, "rb")
        with pytest.raises(UnsupportedOperationError):
            api.ReadFileScatter(handle, [2, 2])
        api.CloseHandle(handle)


class TestHandles:
    def test_handles_are_nt_style(self, api, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"")
        handles = [api.CreateFile(str(path), "rb") for _ in range(3)]
        assert all(h % 4 == 0 for h in handles)
        assert len(set(handles)) == 3
        for handle in handles:
            api.CloseHandle(handle)

    def test_invalid_handle_rejected(self, api):
        with pytest.raises(HandleError):
            api.ReadFile(999, 1)

    def test_double_close_rejected(self, api, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"")
        handle = api.CreateFile(str(path), "rb")
        api.CloseHandle(handle)
        with pytest.raises(HandleError):
            api.CloseHandle(handle)

    def test_open_handle_count(self, api, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"")
        assert api.open_handle_count() == 0
        handle = api.CreateFile(str(path), "rb")
        assert api.open_handle_count() == 1
        api.CloseHandle(handle)
        assert api.open_handle_count() == 0


class TestGatherWrite:
    def test_gather_write_on_seekable(self, api, make_active):
        from repro.core import Container

        path = make_active(NULL, data=b"")
        handle = api.CreateFile(path, "r+b")
        assert api.WriteFileGather(handle, [b"ab", b"cd", b"ef"]) == 6
        api.CloseHandle(handle)
        assert Container.load(path).data == b"abcdef"

    def test_gather_write_dropped_on_process_strategy(self, make_active):
        api = Win32Api(strategy="process")
        path = make_active(NULL, data=b"")
        handle = api.CreateFile(path, "r+b")
        with pytest.raises(UnsupportedOperationError):
            api.WriteFileGather(handle, [b"x"])
        api.CloseHandle(handle)
