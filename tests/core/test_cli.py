"""Tests for the afctl command-line tool."""

import io
import sys

import pytest

from repro.cli import main
from repro.core import Container


@pytest.fixture
def workdir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestCreateInfo:
    def test_create_and_info(self, workdir, capsys):
        assert main(["create", "f.af",
                     "repro.sentinels.null:NullFilterSentinel"]) == 0
        assert main(["info", "f.af"]) == 0
        out = capsys.readouterr().out
        assert "NullFilterSentinel" in out
        assert "data part: 0 bytes" in out

    def test_create_with_json_params(self, workdir):
        assert main(["create", "g.af",
                     "repro.sentinels.generate:CounterSentinel",
                     "--param", "width=3", "--param", "count=2",
                     "--ephemeral"]) == 0
        container = Container.load("g.af")
        assert container.spec.params == {"width": 3, "count": 2}
        assert container.meta == {"data": "memory"}

    def test_create_string_param_fallback(self, workdir):
        main(["create", "s.af", "repro.sentinels.cipher:XorCipherSentinel",
              "--param", "key=hunter2"])
        assert Container.load("s.af").spec.params == {"key": "hunter2"}

    def test_create_refuses_overwrite_without_force(self, workdir, capsys):
        main(["create", "f.af", "repro.sentinels.null:NullFilterSentinel"])
        assert main(["create", "f.af",
                     "repro.sentinels.null:NullFilterSentinel"]) == 1
        assert "afctl:" in capsys.readouterr().err

    def test_create_with_data_file(self, workdir):
        (workdir / "seed.txt").write_bytes(b"seed content")
        main(["create", "d.af", "repro.sentinels.null:NullFilterSentinel",
              "--data", "seed.txt"])
        assert Container.load("d.af").data == b"seed content"

    def test_bad_param_syntax(self, workdir):
        with pytest.raises(SystemExit):
            main(["create", "x.af", "repro.sentinels.null:NullFilterSentinel",
                  "--param", "oops"])

    def test_info_missing_file(self, workdir, capsys):
        assert main(["info", "ghost.af"]) == 1


class TestCatWrite:
    def test_cat(self, workdir, capsysbinary):
        main(["create", "c.af", "repro.sentinels.null:NullFilterSentinel",
              "--force"])
        Container.load("c.af").write_data(b"cat me\n")
        assert main(["cat", "c.af"]) == 0
        assert capsysbinary.readouterr().out.endswith(b"cat me\n")

    def test_cat_limit_on_endless_generator(self, workdir, capsysbinary):
        main(["create", "r.af", "repro.sentinels.generate:RandomBytesSentinel",
              "--ephemeral"])
        assert main(["cat", "r.af", "--limit", "64"]) == 0
        assert len(capsysbinary.readouterr().out) >= 64

    def test_write_then_cat(self, workdir, monkeypatch, capsys):
        main(["create", "w.af", "repro.sentinels.null:NullFilterSentinel"])
        monkeypatch.setattr(sys, "stdin",
                            type("S", (), {"buffer": io.BytesIO(b"payload")})())
        assert main(["write", "w.af"]) == 0
        assert Container.load("w.af").data == b"payload"

    def test_write_append(self, workdir, monkeypatch):
        main(["create", "w.af", "repro.sentinels.null:NullFilterSentinel"])
        Container.load("w.af").write_data(b"head;")
        monkeypatch.setattr(sys, "stdin",
                            type("S", (), {"buffer": io.BytesIO(b"tail")})())
        main(["write", "w.af", "--append"])
        assert Container.load("w.af").data == b"head;tail"


class TestCopyAndMisc:
    def test_copy_moves_both_parts(self, workdir):
        main(["create", "a.af", "repro.sentinels.cipher:XorCipherSentinel",
              "--param", "key=k"])
        Container.load("a.af").write_data(b"secret-ish")
        assert main(["copy", "a.af", "b.af"]) == 0
        copy = Container.load("b.af")
        assert copy.spec.params == {"key": "k"}
        assert copy.data == b"secret-ish"

    def test_strategies_listing(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("process", "process-control", "thread", "inproc"):
            assert name in out

    def test_figure6_passthrough(self, capsys):
        assert main(["figure6", "--panel", "c", "--op", "read",
                     "--calls", "40"]) == 0
        assert "Figure 6(c) Read" in capsys.readouterr().out


class TestAdaptAndSandboxCommands:
    def test_adapt_rewrites_spec(self, workdir, capsys):
        main(["create", "t.af", "tests.core.test_adapter:TickerStream",
              "--param", "lines=4", "--ephemeral"])
        assert main(["adapt", "t.af"]) == 0
        container = Container.load("t.af")
        assert container.spec.target == \
            "repro.core.adapter:StreamAdapterSentinel"
        # the adapted file is now seekable under random-access strategies
        from repro.core import open_active

        with open_active("t.af", "rb", strategy="inproc") as stream:
            stream.seek(9)
            assert stream.read(9) == b"tick 001\n"

    def test_sandbox_rewrites_spec(self, workdir):
        main(["create", "s.af", "repro.sentinels.null:NullFilterSentinel"])
        Container.load("s.af").write_data(b"guarded")
        assert main(["sandbox", "s.af", "--read-only",
                     "--max-total-bytes", "4"]) == 0
        from repro.core import open_active
        from repro.errors import SandboxViolation

        with open_active("s.af", "r+b", strategy="inproc") as stream:
            assert stream.read(4) == b"guar"
            with pytest.raises(SandboxViolation):
                stream.read(4)

    def test_sandbox_host_allowlist_flag(self, workdir):
        main(["create", "h.af", "repro.sentinels.null:NullFilterSentinel"])
        main(["sandbox", "h.af", "--allow-host", "files",
              "--allow-host", "quotes"])
        params = Container.load("h.af").spec.params
        assert params["policy"]["allowed_hosts"] == ["files", "quotes"]


class TestLsCommand:
    def test_ls_lists_active_files(self, workdir, capsys):
        main(["create", "one.af", "repro.sentinels.null:NullFilterSentinel"])
        main(["create", "two.af", "repro.sentinels.cipher:XorCipherSentinel",
              "--param", "key=k"])
        (workdir / "plain.txt").write_text("not active")
        assert main(["ls", "."]) == 0
        out = capsys.readouterr().out
        assert "one.af" in out and "two.af" in out
        assert "plain.txt" not in out
        assert "XorCipherSentinel" in out

    def test_ls_empty_directory(self, workdir, capsys):
        assert main(["ls", "."]) == 0
        assert "no active files" in capsys.readouterr().out

    def test_ls_sniff_finds_renamed_containers(self, workdir, capsys):
        import shutil

        main(["create", "orig.af", "repro.sentinels.null:NullFilterSentinel"])
        shutil.copy("orig.af", "disguised.bin")
        main(["ls", ".", "--sniff"])
        assert "disguised.bin" in capsys.readouterr().out

    def test_ls_reports_corrupt_containers(self, workdir, capsys):
        (workdir / "broken.af").write_bytes(b"not a container at all")
        main(["ls", "."])
        assert "<unreadable container>" in capsys.readouterr().out


class TestStatsTrace:
    def _make(self, data=b"hello world"):
        import pathlib

        pathlib.Path("data.txt").write_bytes(data)
        assert main(["create", "f.af",
                     "repro.sentinels.null:NullFilterSentinel",
                     "--data", "data.txt"]) == 0

    def test_stats_renders_every_family(self, workdir, capsys):
        self._make()
        assert main(["stats", "f.af"]) == 0
        out = capsys.readouterr().out
        for heading in ("transport totals:", "files:", "cache:",
                        "network:", "faults:", "close errors:"):
            assert heading in out
        assert "reads=1" in out

    def test_stats_json_is_machine_readable(self, workdir, capsys):
        import json

        self._make()
        capsys.readouterr()  # drop the create banner
        assert main(["stats", "f.af", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {"file", "snapshot"} == set(doc)
        assert doc["snapshot"]["transport"]["totals"]["requests_sent"] >= 1

    def test_trace_cat_prints_timeline(self, workdir, capsys):
        self._make()
        assert main(["trace", "f.af", "--", "cat"]) == 0
        out = capsys.readouterr().out
        for name in ("file", "app.read", "frame.read", "dispatch.read"):
            assert name in out

    def test_trace_leaves_tracing_off(self, workdir):
        from repro.core.telemetry import TELEMETRY

        self._make()
        assert main(["trace", "f.af", "--", "size"]) == 0
        assert not TELEMETRY.tracing

    def test_trace_export_writes_one_tree(self, workdir, capsys):
        import json

        self._make()
        assert main(["trace", "--export", "t.jsonl", "f.af",
                     "--", "read", "0", "5"]) == 0
        lines = [json.loads(line)
                 for line in open("t.jsonl").read().splitlines()]
        assert lines
        assert len({line["trace"] for line in lines}) == 1
        sids = {line["sid"] for line in lines}
        roots = [ln for ln in lines if ln["parent"] not in sids]
        assert [r["name"] for r in roots] == ["file"]

    def test_trace_rejects_unknown_verb(self, workdir, capsys):
        self._make()
        assert main(["trace", "f.af", "--", "frobnicate"]) == 1
        assert "unknown op" in capsys.readouterr().err


class TestChaos:
    """The ``afctl chaos`` subcommands (run / dry-run / lint)."""

    SCENARIO = """\
name: cli-smoke
seed: 11
workload:
  kind: swarm-read
  sessions: 2
  bytes: 2048
timeline:
  - at: 0.02
    point: resource
    action: cpu-hog
    params:
      seconds: 0.1
      threads: 1
invariants:
  - data-identical
  - no-hung-futures
"""

    def _write(self, workdir, text=None):
        path = workdir / "scenario.yaml"
        path.write_text(text or self.SCENARIO)
        return str(path)

    def test_lint_ok(self, workdir, capsys):
        assert main(["chaos", "lint", self._write(workdir)]) == 0
        assert "cli-smoke: ok" in capsys.readouterr().out

    def test_lint_failure_exits_nonzero(self, workdir, capsys):
        bad = self.SCENARIO.replace("action: cpu-hog", "action: warp-core")
        assert main(["chaos", "lint", self._write(workdir, bad)]) == 1
        assert "warp-core" in capsys.readouterr().err

    def test_dry_run_json_reports_zero_injections(self, workdir, capsys):
        import json

        assert main(["chaos", "dry-run", self._write(workdir),
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["dry_run"] is True
        assert report["injections_performed"] == 0
        assert report["plan"][0]["action"] == "cpu-hog"

    def test_run_writes_report_and_respects_seed(self, workdir, capsys):
        import json

        path = self._write(workdir)
        assert main(["chaos", "run", path, "--seed", "77",
                     "--report", "report.json", "--json"]) == 0
        stdout_report = json.loads(capsys.readouterr().out)
        file_report = json.loads((workdir / "report.json").read_text())
        assert stdout_report["seed"] == 77
        assert stdout_report["passed"] is True
        assert file_report["fingerprint"] == stdout_report["fingerprint"]

    def test_run_fails_on_unsatisfied_invariant(self, workdir, capsys):
        impossible = self.SCENARIO + "  - faults.injected.send.kill >= 99\n"
        assert main(["chaos", "run",
                     self._write(workdir, impossible)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_scenario_error_is_reported_not_raised(self, workdir, capsys):
        path = workdir / "broken.yaml"
        path.write_text("just a string\n")
        assert main(["chaos", "lint", str(path)]) == 1
        assert "afctl:" in capsys.readouterr().err
