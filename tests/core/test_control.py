"""Tests for the control protocol codec and the dispatcher."""

import pytest
from hypothesis import given, strategies as st

from repro.core import control
from repro.core.dispatch import SentinelDispatcher
from repro.core.sentinel import Sentinel, SentinelContext
from repro.errors import (
    FrameError,
    ProtocolError,
    SentinelError,
    UnsupportedOperationError,
)


class TestCodec:
    def test_roundtrip(self):
        blob = control.encode_message({"cmd": "read", "n": 5}, b"payload")
        fields, payload = control.decode_message(blob)
        assert fields == {"cmd": "read", "n": 5}
        assert payload == b"payload"

    def test_empty_payload(self):
        fields, payload = control.decode_message(control.encode_message({"a": 1}))
        assert (fields, payload) == ({"a": 1}, b"")

    def test_unencodable_fields(self):
        with pytest.raises(FrameError):
            control.encode_message({"bad": object()})

    def test_decode_too_short(self):
        with pytest.raises(FrameError):
            control.decode_message(b"\x00")

    def test_decode_header_overruns(self):
        with pytest.raises(FrameError):
            control.decode_message(b"\x00\x00\x00\xff{}")

    def test_decode_header_not_json(self):
        blob = (7).to_bytes(4, "big") + b"nopenop"
        with pytest.raises(FrameError):
            control.decode_message(blob)

    def test_decode_header_not_object(self):
        import json

        body = json.dumps([1, 2]).encode()
        blob = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError):
            control.decode_message(blob)

    def test_command_validates_name(self):
        with pytest.raises(ProtocolError):
            control.command("explode")

    def test_known_commands_encode(self):
        for cmd in control.COMMANDS:
            fields, _ = control.decode_message(control.command(cmd))
            assert fields["cmd"] == cmd

    @given(st.dictionaries(st.text(min_size=1, max_size=8),
                           st.integers() | st.text(max_size=16), max_size=6),
           st.binary(max_size=256))
    def test_property_roundtrip(self, fields, payload):
        out_fields, out_payload = control.decode_message(
            control.encode_message(fields, payload)
        )
        assert out_fields == fields
        assert out_payload == payload


class TestResponses:
    def test_ok_response(self):
        fields, payload = control.decode_message(control.ok_response(b"d", x=1))
        assert fields == {"ok": True, "x": 1}
        control.raise_for_response(fields)  # no raise

    def test_error_response_roundtrips_type(self):
        fields, _ = control.decode_message(
            control.error_response(UnsupportedOperationError("nope"))
        )
        with pytest.raises(UnsupportedOperationError, match="nope"):
            control.raise_for_response(fields)

    def test_unknown_error_type_becomes_sentinel_error(self):
        with pytest.raises(SentinelError, match="weird"):
            control.raise_for_response({"ok": False, "error": "weird",
                                        "error_type": "ValueError"})

    def test_every_library_error_survives_the_wire(self):
        # regression: the registry used to be a hand-written subset, so
        # e.g. ChannelClosedError degraded to SentinelError on round-trip
        from repro.errors import wire_error_registry

        registry = wire_error_registry()
        assert "ChannelClosedError" in registry
        assert "StrategyError" in registry
        assert "FrameError" in registry
        for name, exc_class in registry.items():
            fields, _ = control.decode_message(
                control.error_response(exc_class(f"boom via {name}"))
            )
            with pytest.raises(exc_class, match=f"boom via {name}"):
                control.raise_for_response(fields)


class CountingSentinel(Sentinel):
    def __init__(self, params=None):
        super().__init__(params)
        self.closes = 0

    def on_close(self, ctx):
        self.closes += 1

    def on_control(self, ctx, op, args, payload):
        if op == "sum":
            return {"total": sum(args.get("values", []))}, payload[::-1]
        return super().on_control(ctx, op, args, payload)


class TestDispatcher:
    @pytest.fixture
    def dispatcher(self):
        sentinel = CountingSentinel()
        ctx = SentinelContext()
        ctx.data.write_at(0, b"0123456789")
        return SentinelDispatcher(sentinel, ctx)

    def test_read(self, dispatcher):
        fields, payload = dispatcher.execute({"cmd": "read", "offset": 2,
                                              "size": 4}, b"")
        assert fields["ok"] and payload == b"2345"

    def test_write(self, dispatcher):
        fields, _ = dispatcher.execute({"cmd": "write", "offset": 0}, b"XY")
        assert fields["written"] == 2

    def test_size(self, dispatcher):
        fields, _ = dispatcher.execute({"cmd": "size"}, b"")
        assert fields["size"] == 10

    def test_truncate_and_flush(self, dispatcher):
        dispatcher.execute({"cmd": "truncate", "size": 3}, b"")
        fields, _ = dispatcher.execute({"cmd": "size"}, b"")
        assert fields["size"] == 3
        fields, _ = dispatcher.execute({"cmd": "flush"}, b"")
        assert fields["ok"]

    def test_custom_control(self, dispatcher):
        fields, payload = dispatcher.execute(
            {"cmd": "control", "op": "sum", "args": {"values": [1, 2, 3]}},
            b"abc",
        )
        assert fields["total"] == 6
        assert payload == b"cba"

    def test_unknown_control_op_is_failure_response(self, dispatcher):
        fields, _ = dispatcher.execute({"cmd": "control", "op": "nope",
                                        "args": {}}, b"")
        assert fields["ok"] is False
        assert fields["error_type"] == "UnsupportedOperationError"

    def test_unknown_command_is_failure_response(self, dispatcher):
        fields, _ = dispatcher.execute({"cmd": "zap"}, b"")
        assert fields["ok"] is False
        assert fields["error_type"] == "ProtocolError"

    def test_sentinel_exception_does_not_kill_loop(self, dispatcher):
        fields, _ = dispatcher.execute({"cmd": "read", "offset": "NaN",
                                        "size": 1}, b"")
        assert fields["ok"] is False
        # loop still serves afterwards
        fields, payload = dispatcher.execute({"cmd": "read", "offset": 0,
                                              "size": 2}, b"")
        assert payload == b"01"

    def test_close_is_idempotent(self, dispatcher):
        dispatcher.execute({"cmd": "close"}, b"")
        dispatcher.close()
        assert dispatcher.sentinel.closes == 1

    def test_handle_encodes(self, dispatcher):
        blob = dispatcher.handle({"cmd": "size"}, b"")
        fields, _ = control.decode_message(blob)
        assert fields["size"] == 10
