"""Tests for the multiplexed Channel transport.

Covers the extended codec (the ``rid``/``chan`` envelope) with
hypothesis property tests, and the demultiplexer's routing of
interleaved responses under concurrent requests.
"""

import os
import threading

import pytest
from hypothesis import given, strategies as st

from repro.core import control
from repro.core.channel import (
    CONTROL_CHAN,
    FIRST_SESSION_CHAN,
    LocalChannel,
    StreamChannel,
)
from repro.errors import ChannelClosedError, FrameError, ProtocolError

# JSON-representable header values (what the codec actually carries)
_scalars = (st.none() | st.booleans() | st.integers()
            | st.text(max_size=16))
_fields = st.dictionaries(
    st.text(min_size=1, max_size=8).filter(
        lambda k: k not in control.ENVELOPE_KEYS),
    _scalars, max_size=6)


class TestEnvelopeCodec:
    @given(st.integers(min_value=0, max_value=2**31),
           st.integers(min_value=0, max_value=2**16),
           _fields, st.binary(max_size=256))
    def test_request_envelope_roundtrip(self, rid, chan, fields, payload):
        blob = control.request_envelope(rid, chan, fields, payload)
        decoded_fields, decoded_payload = control.decode_message(blob)
        out_rid, out_chan, is_reply, rest = control.split_envelope(
            decoded_fields)
        assert (out_rid, out_chan, is_reply) == (rid, chan, False)
        assert rest == fields
        assert decoded_payload == payload

    @given(st.integers(min_value=0, max_value=2**31),
           st.integers(min_value=0, max_value=2**16),
           _fields, st.binary(max_size=256))
    def test_reply_envelope_roundtrip(self, rid, chan, fields, payload):
        blob = control.reply_envelope(rid, chan, fields, payload)
        decoded_fields, decoded_payload = control.decode_message(blob)
        out_rid, out_chan, is_reply, rest = control.split_envelope(
            decoded_fields)
        assert (out_rid, out_chan, is_reply) == (rid, chan, True)
        assert rest == fields
        assert decoded_payload == payload

    @given(_fields)
    def test_missing_envelope_rejected(self, fields):
        with pytest.raises(FrameError):
            control.split_envelope(fields)

    def test_invalid_envelope_values_rejected(self):
        with pytest.raises(FrameError):
            control.split_envelope({"rid": "not-a-number", "chan": 0})


def make_stream_pair():
    """Two connected StreamChannels over OS pipes, plus a cleanup."""
    a_read, b_write = os.pipe()
    b_read, a_write = os.pipe()
    a = StreamChannel(os.fdopen(a_read, "rb", buffering=0),
                      os.fdopen(a_write, "wb", buffering=0), name="a")
    b = StreamChannel(os.fdopen(b_read, "rb", buffering=0),
                      os.fdopen(b_write, "wb", buffering=0), name="b")
    return a, b


class TestDemux:
    def test_basic_request_reply(self):
        a, b = make_stream_pair()
        b.register(CONTROL_CHAN, lambda f, p: ({"ok": True, "echo": f["x"]},
                                               p.upper()))
        a.start()
        b.start()
        try:
            fields, payload = a.request(CONTROL_CHAN, {"x": 42}, b"abc")
            assert fields == {"ok": True, "echo": 42}
            assert payload == b"ABC"
        finally:
            a.close()

    def test_interleaved_responses_route_to_their_requests(self):
        """Replies arriving out of request order reach the right caller."""
        a, b = make_stream_pair()
        gate = threading.Event()

        def handler(fields, payload):
            if fields["x"] == 0:
                gate.wait(5.0)  # first request replies LAST
            else:
                gate.set()
            return {"ok": True, "echo": fields["x"]}, b""

        b.register(FIRST_SESSION_CHAN, handler)
        b.register(FIRST_SESSION_CHAN + 1, handler)
        a.start()
        b.start()
        try:
            slow = a.request_async(FIRST_SESSION_CHAN, {"x": 0})
            fast = a.request_async(FIRST_SESSION_CHAN + 1, {"x": 1})
            fast_fields, _ = fast.wait(5.0)
            slow_fields, _ = slow.wait(5.0)
            assert fast_fields["echo"] == 1
            assert slow_fields["echo"] == 0
        finally:
            a.close()

    def test_concurrent_requests_all_get_their_own_reply(self):
        a, b = make_stream_pair()
        b.register(CONTROL_CHAN, lambda f, p: ({"ok": True, "echo": f["x"]},
                                               p))
        a.start()
        b.start()
        errors = []

        def caller(x):
            try:
                for i in range(20):
                    fields, payload = a.request(
                        CONTROL_CHAN, {"x": x * 1000 + i},
                        str(x * 1000 + i).encode())
                    assert fields["echo"] == x * 1000 + i
                    assert payload == str(x * 1000 + i).encode()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=caller, args=(x,))
                   for x in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        a.close()
        assert not errors

    def test_per_channel_ordering_is_preserved(self):
        a, b = make_stream_pair()
        seen = []
        b.register(CONTROL_CHAN,
                   lambda f, p: (seen.append(f["n"]), ({"ok": True}, b""))[1])
        a.start()
        b.start()
        try:
            pendings = [a.request_async(CONTROL_CHAN, {"n": n})
                        for n in range(50)]
            for pending in pendings:
                pending.wait(5.0)
            assert seen == list(range(50))
        finally:
            a.close()

    def test_handler_exception_becomes_error_reply(self):
        a, b = make_stream_pair()

        def handler(fields, payload):
            raise ProtocolError("handler exploded")

        b.register(CONTROL_CHAN, handler)
        a.start()
        b.start()
        try:
            fields, _ = a.request(CONTROL_CHAN, {"cmd": "ping"})
            assert fields["ok"] is False
            assert fields["error_type"] == "ProtocolError"
        finally:
            a.close()

    def test_request_to_unhandled_channel_is_error_reply(self):
        a, b = make_stream_pair()
        a.start()
        b.start()
        try:
            fields, _ = a.request(99, {"cmd": "ping"}, timeout=5.0)
            assert fields["ok"] is False
            assert fields["error_type"] == "ProtocolError"
        finally:
            a.close()

    def test_peer_death_fails_outstanding_requests(self):
        a, b = make_stream_pair()
        hold = threading.Event()
        b.register(CONTROL_CHAN, lambda f, p: (hold.wait(5.0),
                                               ({"ok": True}, b""))[1])
        a.start()
        b.start()
        pending = a.request_async(CONTROL_CHAN, {"cmd": "ping"})
        b.kill("simulated peer crash")
        with pytest.raises(ChannelClosedError):
            pending.wait(5.0)
        hold.set()
        assert a.dead

    def test_request_after_close_raises(self):
        a, b = make_stream_pair()
        a.start()
        b.start()
        a.close()
        with pytest.raises(ChannelClosedError):
            a.request(CONTROL_CHAN, {"cmd": "ping"})
        b.wait_closed(timeout=5.0)

    def test_counters_track_pipelining(self):
        a, b = make_stream_pair()
        gate = threading.Event()
        b.register(CONTROL_CHAN, lambda f, p: (gate.wait(5.0),
                                               ({"ok": True}, b""))[1])
        a.start()
        b.start()
        try:
            first = a.request_async(CONTROL_CHAN, {"cmd": "ping"})
            second = a.request_async(CONTROL_CHAN, {"cmd": "ping"})
            assert a.counters.in_flight == 2
            gate.set()
            first.wait(5.0)
            second.wait(5.0)
            snap = a.counters.snapshot()
            assert snap["max_in_flight"] >= 2
            assert snap["replies_received"] == 2
            assert snap["per_op"]["ping"]["count"] == 2
        finally:
            a.close()


class TestLocalChannel:
    def test_pair_round_trip_no_serialization(self):
        app, sentinel = LocalChannel.pair()
        marker = object()  # deliberately not JSON-encodable
        sentinel.register(FIRST_SESSION_CHAN,
                          lambda f, p: ({"ok": True, "obj": f["obj"]}, p))
        fields, payload = app.request(FIRST_SESSION_CHAN,
                                      {"obj": marker}, b"raw")
        assert fields["obj"] is marker  # crossed by reference, no copy
        assert payload == b"raw"
        app.close()

    def test_kill_propagates_to_peer(self):
        app, sentinel = LocalChannel.pair()
        app.close()
        assert sentinel.dead

    def test_local_counters(self):
        app, sentinel = LocalChannel.pair()
        sentinel.register(FIRST_SESSION_CHAN,
                          lambda f, p: ({"ok": True}, b"xy"))
        app.request(FIRST_SESSION_CHAN, {"cmd": "read"})
        snap = app.counters.snapshot()
        assert snap["requests_sent"] == 1
        assert snap["per_op"]["read"]["count"] == 1
        app.close()
