"""Unit tests for open-mode parsing and opener edge cases."""

import pytest

from repro.core.opener import parse_mode
from repro.core import create_active, open_active
from repro.errors import SimulationError


class TestParseMode:
    @pytest.mark.parametrize("mode,expected", [
        ("rb", {"readable": True, "writable": False,
                "truncate": False, "append": False}),
        ("r+b", {"readable": True, "writable": True,
                 "truncate": False, "append": False}),
        ("wb", {"readable": False, "writable": True,
                "truncate": True, "append": False}),
        ("w+b", {"readable": True, "writable": True,
                 "truncate": True, "append": False}),
        ("ab", {"readable": False, "writable": True,
                "truncate": False, "append": True}),
        ("a+b", {"readable": True, "writable": True,
                 "truncate": False, "append": True}),
    ])
    def test_flag_matrix(self, mode, expected):
        assert parse_mode(mode) == expected

    @pytest.mark.parametrize("mode", ["r", "r+", "w", "w+", "a", "a+"])
    def test_text_modes_rejected(self, mode):
        # regression: the opener layer is binary-only, so the docstring's
        # "only binary modes are accepted" must actually be enforced
        with pytest.raises(ValueError):
            parse_mode(mode)

    @pytest.mark.parametrize("mode", ["x", "rw", "rbb", "", "+", "br+q"])
    def test_bad_modes(self, mode):
        with pytest.raises(ValueError):
            parse_mode(mode)


class TestOpenerEdges:
    def test_pathlib_path_accepted(self, tmp_path):
        from pathlib import Path

        target = tmp_path / "p.af"
        create_active(target, "repro.sentinels.null:NullFilterSentinel",
                      data=b"via Path")
        with open_active(Path(target), "rb", strategy="inproc") as stream:
            assert stream.read() == b"via Path"

    def test_spec_object_with_params_kwarg_rejected(self, tmp_path):
        from repro.core.spec import SentinelSpec

        spec = SentinelSpec("repro.sentinels.null:NullFilterSentinel")
        with pytest.raises(ValueError, match="params"):
            create_active(tmp_path / "x.af", spec, params={"extra": 1})

    def test_open_missing_container(self, tmp_path):
        from repro.errors import ContainerError

        with pytest.raises(ContainerError):
            open_active(tmp_path / "ghost.af", "rb", strategy="inproc")


class TestSimStubGetFileSize:
    def test_stubbed_getfilesize_raises_for_active_handles(self):
        from repro.afsim.sessions import open_session
        from repro.afsim.backings import MemoryBacking
        from repro.afsim.stubs import ActiveFileRuntime
        from repro.ntos import Kernel, NTFileSystem, Win32

        kernel = Kernel()
        fs = NTFileSystem(kernel)
        fs.create("d.af", b"")
        app = kernel.create_process("app")
        win32 = Win32(kernel, app, fs)
        ActiveFileRuntime(
            kernel, win32,
            lambda path: open_session("dll", kernel, app,
                                      MemoryBacking(kernel)),
        ).install()
        failures = []

        def main():
            handle = win32.CreateFile("d.af")
            try:
                win32.GetFileSize(handle)
            except SimulationError as exc:
                failures.append(exc)
            win32.CloseHandle(handle)

        kernel.create_thread(app, main)
        kernel.run()
        assert len(failures) == 1


class TestNetDevEdges:
    def test_drain_with_empty_queue_is_noop(self):
        from repro.ntos import Kernel, NetDevice, RemoteHost

        kernel = Kernel()
        host = RemoteHost(kernel, NetDevice(kernel))
        kernel.run_program(host.drain)
        assert kernel.now == 0.0

    def test_blocking_send_waits_for_wire_time(self):
        from repro.ntos import Kernel, NetDevice, RemoteHost

        kernel = Kernel()
        host = RemoteHost(kernel, NetDevice(kernel))
        kernel.run_program(lambda: host.send(12500, blocking=True))
        # 12500 B at 0.08 µs/B = 1000 µs of wire occupancy
        assert kernel.now >= 1000.0

    def test_nonblocking_send_returns_before_wire_time(self):
        from repro.ntos import Kernel, NetDevice, RemoteHost

        kernel = Kernel()
        host = RemoteHost(kernel, NetDevice(kernel))
        out = {}

        def main():
            host.send(12500, blocking=False)
            out["at"] = kernel.now

        kernel.run_program(main)
        assert out["at"] < 1000.0
