"""Unit tests for ``MetricsRegistry.diff`` (snapshot delta arithmetic)."""

from repro.core.telemetry import MetricsRegistry


def _snap(global_=None, scopes=None):
    return {"global": global_ or {}, "scopes": scopes or {}}


class TestFlatDiff:
    def test_counter_movement(self):
        delta = MetricsRegistry.diff({"reqs": 3}, {"reqs": 10})
        assert delta == {"reqs": 7}

    def test_zero_deltas_omitted(self):
        delta = MetricsRegistry.diff({"a": 5, "b": 1}, {"a": 5, "b": 2})
        assert delta == {"b": 1}

    def test_new_metric_counts_from_zero(self):
        assert MetricsRegistry.diff({}, {"fresh": 4}) == {"fresh": 4}

    def test_histograms_contribute_count_and_sum(self):
        before = {"lat": {"count": 1, "sum": 0.5, "buckets": {}}}
        after = {"lat": {"count": 4, "sum": 2.0, "buckets": {}}}
        delta = MetricsRegistry.diff(before, after)
        assert delta == {"lat.count": 3, "lat.sum": 1.5}

    def test_non_numeric_values_drop(self):
        delta = MetricsRegistry.diff({}, {"flag": True, "name": "x",
                                          "n": 1})
        assert delta == {"n": 1}


class TestSnapshotDiff:
    def test_full_document_shape(self):
        before = _snap({"reqs": 1}, {"a.af": {"reads": 2}})
        after = _snap({"reqs": 5}, {"a.af": {"reads": 7}})
        delta = MetricsRegistry.diff(before, after)
        assert delta == {"global": {"reqs": 4},
                         "scopes": {"a.af": {"reads": 5}}}

    def test_unmoved_scopes_omitted(self):
        before = _snap({}, {"a.af": {"reads": 2}, "b.af": {"reads": 1}})
        after = _snap({}, {"a.af": {"reads": 2}, "b.af": {"reads": 3}})
        delta = MetricsRegistry.diff(before, after)
        assert delta["scopes"] == {"b.af": {"reads": 2}}

    def test_scope_appearing_after_baseline(self):
        delta = MetricsRegistry.diff(
            _snap(), _snap(scopes={"new.af": {"opens": 1}}))
        assert delta["scopes"] == {"new.af": {"opens": 1}}

    def test_empty_diff_means_nothing_moved(self):
        snap = _snap({"reqs": 9}, {"a.af": {"reads": 3}})
        assert MetricsRegistry.diff(snap, snap) == \
            {"global": {}, "scopes": {}}


class TestLiveRegistry:
    def test_diff_over_real_snapshots(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc(2)
        before = registry.snapshot()
        registry.counter("ops").inc(3)
        registry.counter("other", scope="c.af").inc()
        registry.histogram("lat").observe(0.25)
        delta = MetricsRegistry.diff(before, registry.snapshot())
        assert delta["global"]["ops"] == 3
        assert delta["global"]["lat.count"] == 1
        assert delta["scopes"]["c.af"]["other"] == 1
