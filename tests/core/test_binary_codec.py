"""The tagged binary header codec: exact round-trips, safe fallbacks.

The contract under test: every header `encode_head_wire` accepts decodes
back to the *identical* field dict (downstream code is encoding-blind);
everything else returns ``None`` so the JSON path carries it; and
garbage raises :class:`FrameError` rather than leaking struct errors.
"""

import io
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import control
from repro.errors import FrameError
from repro.util import framing

U64 = st.integers(0, 2**64 - 1)
U32 = st.integers(0, 2**32 - 1)


def roundtrip(fields):
    """Encode via the wire helper, decode via the frame reader."""
    wire = control.encode_head_wire(fields)
    assert wire is not None, f"binary codec rejected {fields!r}"
    word = struct.unpack(">I", wire[:4])[0]
    assert word & 0x80000000, "binary headers must carry the tag bit"
    return control.decode_binary_head(wire[4:])


HOT_HEADERS = [
    {"cmd": "read", "offset": 0, "size": 4096, "rid": 1, "chan": 2},
    {"cmd": "read", "offset": 2**40, "size": 2**63, "rid": 2**64 - 1,
     "chan": 2**32 - 1},
    {"cmd": "write", "offset": 512, "rid": 7, "chan": 3},
    {"cmd": "readv", "extents": [[0, 100], [100, 200]], "rid": 9, "chan": 4},
    {"cmd": "writev", "extents": [[0, 65536]], "rid": 10, "chan": 4},
    {"cmd": "writev", "extents": [], "rid": 11, "chan": 4},
    {"ok": True, "re": True, "rid": 12, "chan": 5},
    {"ok": True, "written": 4096, "re": True, "rid": 13, "chan": 5},
    {"ok": True, "written": [1, 2, 3], "re": True, "rid": 14, "chan": 5},
    {"ok": True, "sizes": [100, 200], "re": True, "rid": 15, "chan": 5},
    {"ok": True, "sizes": [], "re": True, "rid": 16, "chan": 5},
    # Optional fields, alone and combined.
    {"cmd": "read", "offset": 1, "size": 2, "dl": 1.5, "rid": 1, "chan": 1},
    {"cmd": "read", "offset": 1, "size": 2,
     "shm_r": [3, 65536, 9], "rid": 1, "chan": 1},
    {"cmd": "write", "offset": 0, "shm": [0, 40000, 5, 12345],
     "rid": 1, "chan": 1},
    {"ok": True, "sl": 1234, "shm": [2, 1234, 8, 99], "re": True,
     "rid": 1, "chan": 1},
    {"cmd": "write", "offset": 8, "dl": 0.25,
     "shm": [1, 2, 3, 4], "rid": 6, "chan": 2},
]


class TestRoundTrip:
    @pytest.mark.parametrize("fields", HOT_HEADERS,
                             ids=[str(i) for i in range(len(HOT_HEADERS))])
    def test_hot_headers_roundtrip_exactly(self, fields):
        assert roundtrip(fields) == fields

    def test_wire_reader_dispatches_on_tag(self):
        """A full frame written with a binary header decodes end-to-end."""
        fields = {"cmd": "read", "offset": 10, "size": 20,
                  "rid": 3, "chan": 9}
        head = control.encode_head_wire(fields)
        payload = b"xyz"
        buf = io.BytesIO()
        framing.write_frame(buf, head, payload)
        buf.seek(0)
        got_fields, got_payload = control.read_wire_message(buf)
        assert got_fields == fields
        assert got_payload == payload

    def test_decode_message_handles_both_encodings(self):
        fields = {"ok": True, "written": 5, "re": True, "rid": 1, "chan": 2}
        binary = control.encode_head_wire(fields) + b"pp"
        json_blob = control.encode_message(fields, b"pp")
        assert control.decode_message(binary) == (fields, b"pp")
        assert control.decode_message(json_blob) == (fields, b"pp")

    @settings(max_examples=100, deadline=None)
    @given(offset=U64, size=U64, rid=U64, chan=U32,
           dl=st.one_of(st.none(), st.floats(0, 1e12)))
    def test_read_header_roundtrip_property(self, offset, size, rid, chan,
                                            dl):
        fields = {"cmd": "read", "offset": offset, "size": size,
                  "rid": rid, "chan": chan}
        if dl is not None:
            fields["dl"] = dl
        assert roundtrip(fields) == fields

    @settings(max_examples=60, deadline=None)
    @given(extents=st.lists(st.tuples(U64, U64), max_size=20),
           rid=U64, chan=U32, cmd=st.sampled_from(["readv", "writev"]))
    def test_vector_header_roundtrip_property(self, extents, rid, chan, cmd):
        fields = {"cmd": cmd, "extents": [list(e) for e in extents],
                  "rid": rid, "chan": chan}
        assert roundtrip(fields) == fields


class TestFallback:
    """Whatever the binary codec cannot express goes to JSON untouched."""

    COLD_HEADERS = [
        {"cmd": "open", "strategy": "process-control", "rid": 1, "chan": 0},
        {"cmd": "read", "offset": 1, "size": 2, "trace": {"id": "x"},
         "rid": 1, "chan": 1},                         # extra key
        {"cmd": "read", "offset": -1, "size": 2, "rid": 1, "chan": 1},
        {"cmd": "read", "offset": 1, "size": 2**64, "rid": 1, "chan": 1},
        {"cmd": "read", "offset": 1.5, "size": 2, "rid": 1, "chan": 1},
        {"cmd": "rstream", "size": 100, "rid": 1, "chan": 1},
        {"ok": False, "error": "boom", "error_type": "IOError",
         "re": True, "rid": 1, "chan": 1},             # failures stay JSON
        {"ok": True, "size": 10, "re": True, "rid": 1, "chan": 1},
        {"cmd": "read", "offset": 1, "size": 2},       # no envelope
        {"cmd": "read", "offset": 1, "size": 2, "rid": -1, "chan": 1},
        {"ok": True, "written": "ten", "re": True, "rid": 1, "chan": 1},
        {"cmd": "readv", "extents": [[1]], "rid": 1, "chan": 1},
        {"cmd": "readv", "extents": [[0, 1], [2, -3]], "rid": 1, "chan": 1},
    ]

    @pytest.mark.parametrize("fields", COLD_HEADERS,
                             ids=[str(i) for i in range(len(COLD_HEADERS))])
    def test_cold_headers_fall_back(self, fields):
        assert control.encode_head_wire(fields) is None
        # ...and the JSON path still carries them verbatim.
        blob = control.encode_message(fields, b"")
        assert control.decode_message(blob) == (fields, b"")

    def test_kill_switch_forces_json(self, monkeypatch):
        monkeypatch.setattr(control, "BINARY_HEADERS", False)
        fields = {"cmd": "read", "offset": 1, "size": 2, "rid": 1, "chan": 1}
        assert control.encode_head_wire(fields) is None

    def test_encode_never_mutates_its_input(self):
        fields = {"cmd": "read", "offset": 1, "size": 2, "rid": 1, "chan": 1,
                  "dl": 2.0, "shm_r": [0, 65536, 1]}
        snapshot = dict(fields)
        control.encode_head_wire(fields)
        assert fields == snapshot


class TestGarbage:
    """Malformed binary headers die as FrameError, never struct.error."""

    def test_truncated_base(self):
        with pytest.raises(FrameError):
            control.decode_binary_head(b"\x01\x00")

    def test_unknown_kind(self):
        head = struct.pack(">BBIQ", 99, 0, 1, 1)
        with pytest.raises(FrameError):
            control.decode_binary_head(head)

    def test_trailing_bytes_rejected(self):
        good = control.encode_head_wire(
            {"ok": True, "re": True, "rid": 1, "chan": 1})[4:]
        with pytest.raises(FrameError):
            control.decode_binary_head(good + b"\x00")

    def test_huge_extent_count_rejected(self):
        # A forged count must not allocate or loop unboundedly.
        head = struct.pack(">BBIQ", 3, 0, 1, 1) + struct.pack(">I", 2**31)
        with pytest.raises(FrameError):
            control.decode_binary_head(head)

    def test_truncated_optional_field(self):
        head = struct.pack(">BBIQ", 1, 1, 1, 1)  # dl flag, no dl bytes
        with pytest.raises(FrameError):
            control.decode_binary_head(head)

    @settings(max_examples=150, deadline=None)
    @given(blob=st.binary(max_size=64))
    def test_arbitrary_bytes_never_leak_struct_error(self, blob):
        try:
            control.decode_binary_head(blob)
        except FrameError:
            pass
