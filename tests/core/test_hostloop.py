"""Tests for the event-loop sentinel host (:mod:`repro.core.hostloop`).

The loop replaces thread-per-channel serving with one scheduler and a
small executor pool; these tests pin the properties that refactor must
preserve (serial-per-channel ordering, cross-channel fairness) and the
ones it adds (admission control with typed fast-rejects, reader
backpressure, O(1) thread count, the ``host.*`` telemetry family, and
the ``REPRO_HOST_MODE=threads`` kill switch).
"""

import threading
import time
from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import create_active, hostloop
from repro.core.channel import FIRST_SESSION_CHAN, LocalChannel
from repro.core.control import raise_for_response
from repro.core.hostloop import EventLoopServer
from repro.core.runner import SentinelHost
from repro.core.telemetry import TELEMETRY
from repro.errors import HostOverloadedError, wire_error_registry

NULL = "repro.sentinels.null:NullFilterSentinel"


@pytest.fixture(autouse=True)
def _force_loop_mode(monkeypatch):
    """These tests pin loop-serving behaviour; neutralise an ambient
    ``REPRO_HOST_MODE=threads`` (the CI fallback matrix leg) so they
    stay meaningful there.  The kill-switch test re-sets it itself."""
    monkeypatch.delenv("REPRO_HOST_MODE", raising=False)


class SlowRead:
    """Importable sentinel whose reads stall (host-side saturation)."""

    def __new__(cls, params):
        from repro.core.sentinel import Sentinel

        class Impl(Sentinel):
            def on_read(self, ctx, offset, size):
                import time as _time

                _time.sleep(float(self.params.get("delay", 0.1)))
                return ctx.data.read_at(offset, size)

        return Impl(params)


class TestSerialPerChannel:
    @settings(max_examples=25, deadline=None)
    @given(schedule=st.lists(st.integers(0, 3), min_size=1, max_size=60))
    def test_ordering_preserved_per_channel(self, schedule):
        """Arbitrary interleavings across 4 channels: each channel's ops
        execute strictly in arrival order on the shared loop."""
        app, srv = LocalChannel.pair("ordering")
        seen = defaultdict(list)
        lock = threading.Lock()

        def handler(fields, payload):
            with lock:
                seen[fields["c"]].append(fields["n"])
            return {"ok": True}, b""

        for c in range(4):
            srv.register(FIRST_SESSION_CHAN + c, handler)
        counters = [0] * 4
        pendings = []
        for c in schedule:
            pendings.append(app.request_async(
                FIRST_SESSION_CHAN + c, {"c": c, "n": counters[c]}))
            counters[c] += 1
        for pending in pendings:
            pending.wait(10.0)
        for c in range(4):
            assert seen[c] == list(range(counters[c]))
        app.close()


class TestFairness:
    def test_saturated_channel_cannot_starve_idle_sibling(self):
        """Round-robin grants: with ONE executor, an idle channel's op
        waits behind at most one op of a deeply backlogged sibling."""
        server = EventLoopServer("fair-loop", executors=1,
                                 max_inflight=1000, queue_depth=1000)
        app, srv = LocalChannel.pair("fair")
        srv.loop = server
        try:
            def slow(fields, payload):
                time.sleep(0.05)
                return {"ok": True}, b""

            def fast(fields, payload):
                return {"ok": True}, b""

            srv.register(FIRST_SESSION_CHAN, slow)
            srv.register(FIRST_SESSION_CHAN + 1, fast)
            hogs = [app.request_async(FIRST_SESSION_CHAN, {"n": i})
                    for i in range(30)]  # ~1.5 s of serial backlog
            started = time.monotonic()
            app.request(FIRST_SESSION_CHAN + 1, {"cmd": "ping"},
                        timeout=10.0)
            elapsed = time.monotonic() - started
            # Strict FIFO over the whole backlog would take ~1.5 s; the
            # round-robin bound is ~one slow op plus scheduling noise.
            assert elapsed < 0.75
            for hog in hogs:
                hog.wait(10.0)
        finally:
            app.close()
            server.shutdown()


class TestAdmissionControl:
    def test_overload_fast_reject_is_typed(self):
        """Past the per-channel FIFO bound, submissions come back as
        HostOverloadedError replies without ever being queued."""
        server = EventLoopServer("tiny-loop", executors=2,
                                 max_inflight=4, queue_depth=2)
        app, srv = LocalChannel.pair("overload")
        srv.loop = server
        gate = threading.Event()
        try:
            srv.register(FIRST_SESSION_CHAN,
                         lambda f, p: (gate.wait(5.0), ({"ok": True}, b""))[1])
            pendings = [app.request_async(FIRST_SESSION_CHAN,
                                          {"cmd": "read", "n": i})
                        for i in range(10)]
            gate.set()
            rejected = 0
            for pending in pendings:
                fields, _ = pending.wait(10.0)
                if not fields.get("ok", False):
                    assert fields["error_type"] == "HostOverloadedError"
                    with pytest.raises(HostOverloadedError):
                        raise_for_response(fields)
                    rejected += 1
            assert rejected >= 1  # the flood was shed, not buffered
            assert server.stats()["host.rejects"] == rejected
        finally:
            app.close()
            server.shutdown()

    def test_overload_round_trips_the_wire(self, tmp_path, monkeypatch):
        """A real host child fast-rejects past its (tiny) FIFO bound and
        the typed error crosses the framed transport intact."""
        monkeypatch.setenv("REPRO_HOST_QUEUE_DEPTH", "2")
        path = tmp_path / "slow.af"
        create_active(path, f"{__name__}:SlowRead",
                      params={"delay": 0.15}, data=b"x" * 64,
                      meta={"data": "memory"})
        host = SentinelHost(str(path))
        try:
            chan = host.open("process-control")
            pendings = [host.channel.request_async(
                chan, {"cmd": "read", "offset": 0, "size": 1})
                for _ in range(12)]
            outcomes = [pending.wait(30.0)[0] for pending in pendings]
            rejected = [f for f in outcomes if not f.get("ok", False)]
            served = [f for f in outcomes if f.get("ok", False)]
            assert served  # admitted ops still completed
            assert rejected  # and the flood's tail was shed
            assert all(f["error_type"] == "HostOverloadedError"
                       for f in rejected)
            with pytest.raises(HostOverloadedError):
                raise_for_response(rejected[0])
        finally:
            host.shutdown()

    def test_error_is_wire_registered(self):
        assert wire_error_registry()["HostOverloadedError"] \
            is HostOverloadedError


class TestBackpressure:
    def test_reader_throttles_past_intake_high_water(self):
        """A flood against a stalled handler piles up in the kernel pipe,
        not in this process: the reader stops past the high-water mark
        and drains once the backlog clears."""
        import os

        server = EventLoopServer("bp-loop", executors=1,
                                 max_inflight=1000, queue_depth=1000,
                                 intake_high=4, intake_low=2)
        from repro.core.channel import StreamChannel

        a_read, b_write = os.pipe()
        b_read, a_write = os.pipe()
        a = StreamChannel(os.fdopen(a_read, "rb", buffering=0),
                          os.fdopen(a_write, "wb", buffering=0), name="bp-a")
        # Pin the client to one-frame-per-op: this test exercises the
        # host's intake throttle, which the submission ring would
        # otherwise preempt by holding the flood client-side.
        a.batching = False
        b = StreamChannel(os.fdopen(b_read, "rb", buffering=0),
                          os.fdopen(b_write, "wb", buffering=0), name="bp-b")
        b.loop = server
        gate = threading.Event()
        b.register(FIRST_SESSION_CHAN,
                   lambda f, p: (gate.wait(10.0), ({"ok": True}, b""))[1])
        a.start()
        b.start()
        try:
            pendings = [a.request_async(FIRST_SESSION_CHAN, {"n": i})
                        for i in range(40)]
            time.sleep(0.3)  # let the reader run up against the mark
            stats = server.stats()
            assert stats["host.queue.depth"] <= 8  # not all 40 admitted
            assert stats["host.backpressure.stalls"] >= 1
            gate.set()
            for pending in pendings:
                fields, _ = pending.wait(10.0)
                assert fields.get("ok") is True
        finally:
            gate.set()
            a.close()
            server.shutdown()


class TestThreadScaling:
    def test_thousand_channels_constant_threads(self, tmp_path):
        """The acceptance bound: 1000 logical channels on one host child
        run on <= 8 host-side threads (vs ~1000 under the old model)."""
        path = tmp_path / "many.af"
        create_active(path, NULL, data=b"d" * 32, meta={"data": "memory"})
        host = SentinelHost(str(path))
        try:
            for _ in range(1000):
                host.open("process-control")
            info = host.ping(timeout=30.0)
            assert info["sessions"] == 1000
            assert info["threads"] <= 8
            # control chan + 1000 session channels on the child's loop
            assert info["host"]["host.channels.active"] >= 1000
        finally:
            host.shutdown()


class TestTimerWheel:
    def test_call_later_fires_and_cancels(self):
        fired = []
        live = hostloop.shared_loop().call_later(0.05, fired.append, "live")
        dead = hostloop.shared_loop().call_later(0.05, fired.append, "dead")
        dead.cancel()
        deadline = time.monotonic() + 5.0
        while "live" not in fired and time.monotonic() < deadline:
            time.sleep(0.01)
        assert fired == ["live"]

    def test_pool_reapers_ride_the_wheel_not_timer_threads(self, tmp_path):
        from repro.core.runner import SentinelHostPool

        path = tmp_path / "pooled.af"
        create_active(path, NULL, data=b"data")
        pool = SentinelHostPool(linger=0.2)
        lease = pool.lease(str(path), strategy="process-control")
        try:
            lease.release()
            # The linger is a wheel entry now, never a timer thread.
            assert not [t for t in threading.enumerate()
                        if isinstance(t, threading.Timer)]
            deadline = time.monotonic() + 5.0
            while pool._hosts and time.monotonic() < deadline:
                time.sleep(0.02)
            assert not pool._hosts  # the idle host was reaped on time
        finally:
            pool.shutdown_all()


class TestTelemetry:
    def test_host_family_in_snapshot(self):
        app, srv = LocalChannel.pair("gauges")
        srv.register(FIRST_SESSION_CHAN, lambda f, p: ({"ok": True}, b""))
        app.request(FIRST_SESSION_CHAN, {"cmd": "ping"})
        snap = TELEMETRY.snapshot()
        assert "host" in snap
        # collector keys are uniquified ("af-loop#1"); match by prefix
        shared = next((stats for key, stats in snap["host"].items()
                       if key.startswith("af-loop")), None)
        assert shared is not None
        for key in ("host.channels.active", "host.queue.depth",
                    "host.inflight", "host.rejects"):
            assert key in shared
        # the shared loop publishes its gauges into the metrics registry
        assert "host.inflight" in snap["metrics"]["global"]
        app.close()


class TestKillSwitch:
    def test_threads_mode_restores_worker_threads(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOST_MODE", "threads")
        app, srv = LocalChannel.pair("legacy")
        srv.register(FIRST_SESSION_CHAN, lambda f, p: ({"ok": True}, b""),
                     name="legacy-worker-thread")
        assert any(t.name == "legacy-worker-thread"
                   for t in threading.enumerate())
        fields, _ = app.request(FIRST_SESSION_CHAN, {"cmd": "ping"})
        assert fields["ok"] is True
        app.close()

    def test_loop_mode_spawns_no_per_channel_thread(self):
        app, srv = LocalChannel.pair("loopy")
        srv.register(FIRST_SESSION_CHAN, lambda f, p: ({"ok": True}, b""),
                     name="loopy-worker-thread")
        assert not any(t.name == "loopy-worker-thread"
                       for t in threading.enumerate())
        fields, _ = app.request(FIRST_SESSION_CHAN, {"cmd": "ping"})
        assert fields["ok"] is True
        app.close()
