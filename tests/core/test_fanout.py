"""Unit tests for the coherence-domain fabric (leases, fences,
single-flight fills, bounded pub/sub fan-out)."""

import threading

import pytest

from repro.core.fanout import DEFAULT_MAX_PENDING, CoherenceDomain, domain_for
from repro.errors import FanoutError, SubscriberEvictedError


@pytest.fixture
def domain():
    return CoherenceDomain(scope="test")


class TestLeases:
    def test_grant_and_revoke_on_invalidating_publish(self, domain):
        a = domain.register()  # no install callback: publishes revoke
        b = domain.register()
        domain.grant(a)
        domain.grant(b)
        assert domain.lease_valid(a) and domain.lease_valid(b)
        domain.publish(b, 0, b"xx")
        assert not domain.lease_valid(a), "peer without install must lose lease"
        assert domain.lease_valid(b), "publisher keeps its own lease"

    def test_install_capable_peer_keeps_lease(self, domain):
        installed = []
        a = domain.register(install=lambda off, data, total, version:
                            installed.append((off, bytes(data), total)))
        b = domain.register()
        domain.grant(a)
        domain.publish(b, 4, b"abcd", total=100)
        assert domain.lease_valid(a)
        assert installed == [(4, b"abcd", 100)]

    def test_invalidate_peers_revokes_everyone_else(self, domain):
        dropped = []
        a = domain.register(invalidate=lambda off, size:
                            dropped.append((off, size)))
        b = domain.register()
        domain.grant(a)
        domain.invalidate_peers(b)
        assert not domain.lease_valid(a)
        assert dropped == [(None, None)]

    def test_unregister_forgets_lease(self, domain):
        a = domain.register()
        domain.grant(a)
        domain.unregister(a)
        assert not domain.lease_valid(a)
        assert domain.members == 0


class TestWriteFence:
    def test_overlapping_fences_serialize(self, domain):
        a, b = domain.register(), domain.register()
        order = []
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with domain.write_fence(a, 0, 100):
                entered.set()
                release.wait(5.0)
                order.append("a")

        def waiter():
            entered.wait(5.0)
            with domain.write_fence(b, 50, 10):
                order.append("b")

        threads = [threading.Thread(target=holder),
                   threading.Thread(target=waiter)]
        for t in threads:
            t.start()
        entered.wait(5.0)
        release.set()
        for t in threads:
            t.join(10.0)
        assert order == ["a", "b"]
        assert domain.stats()["write_waits"] >= 1

    def test_disjoint_fences_do_not_wait(self, domain):
        a, b = domain.register(), domain.register()
        with domain.write_fence(a, 0, 10):
            with domain.write_fence(b, 100, 10):
                pass
        assert domain.stats()["write_waits"] == 0


class TestSingleFlightFill:
    def test_concurrent_misses_share_one_fetch(self, domain):
        fetches = []
        issued = threading.Event()
        proceed = threading.Event()

        def start():
            issued.set()

            def resolve():
                proceed.wait(5.0)
                fetches.append(1)
                return b"bytes"
            return resolve

        results = []

        def first():
            resolver = domain.fill(("w", 0), start)
            results.append(resolver())

        def second():
            issued.wait(5.0)
            resolver = domain.fill(("w", 0), start)
            proceed.set()
            results.append(resolver())

        threads = [threading.Thread(target=first),
                   threading.Thread(target=second)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert results == [b"bytes", b"bytes"]
        assert len(fetches) == 1, "joiner must not run its own fetch"
        assert domain.stats()["fill_coalesced"] == 1

    def test_completed_fill_is_not_rejoined(self, domain):
        calls = []

        def start():
            calls.append(1)
            return lambda: b"data"

        assert domain.fill(("k",), start)() == b"data"
        assert domain.fill(("k",), start)() == b"data"
        assert len(calls) == 2, "a later miss re-fetches afresh"
        assert domain.stats()["fill_coalesced"] == 0

    def test_failed_fill_not_sticky(self, domain):
        def bad_start():
            def resolve():
                raise OSError("origin down")
            return resolve

        with pytest.raises(OSError):
            domain.fill(("k",), bad_start)()
        assert domain.fill(("k",), lambda: lambda: b"healed")() == b"healed"

    def test_publish_bumps_epoch_between_fills(self, domain):
        member = domain.register()
        calls = []

        def start():
            calls.append(1)
            started = threading.Event()
            started.set()
            return lambda: b"v1"

        resolver = domain.fill(("w",), start)
        domain.publish(member, 0, b"update")  # bumps epoch, clears fills
        second = domain.fill(("w",), lambda: (calls.append(2),
                                              (lambda: b"v2"))[1])
        assert resolver() == b"v1"
        assert second() == b"v2"
        assert len(calls) == 2


class TestPubSub:
    def test_records_carry_seq_offset_size_and_fields(self, domain):
        a, b = domain.register(), domain.register()
        sub = domain.subscribe(b)
        domain.publish(a, 8, b"abcd", total=64, fields={"generation": 7})
        records = domain.poll(sub)
        assert records == [{"seq": 1, "offset": 8, "size": 4, "total": 64,
                            "generation": 7}]
        assert domain.poll(sub) == []

    def test_publisher_does_not_hear_itself(self, domain):
        a = domain.register()
        sub = domain.subscribe(a)
        domain.publish(a, 0, b"x")
        assert domain.poll(sub) == []

    def test_slow_consumer_evicted_once_then_forgotten(self, domain):
        a, b = domain.register(), domain.register()
        sub = domain.subscribe(b, max_pending=2)
        for _ in range(3):
            domain.publish(a, 0, b"x")
        with pytest.raises(SubscriberEvictedError):
            domain.poll(sub)
        with pytest.raises(FanoutError):
            domain.poll(sub)  # evicted subs are removed entirely
        stats = domain.stats()
        assert stats["evicted"] == 1
        assert stats["dropped"] == 3  # 2 queued + the overflowing one

    def test_fresh_subscription_after_eviction_works(self, domain):
        a, b = domain.register(), domain.register()
        sub = domain.subscribe(b, max_pending=1)
        domain.publish(a, 0, b"x")
        domain.publish(a, 0, b"y")
        with pytest.raises(SubscriberEvictedError):
            domain.poll(sub)
        fresh = domain.subscribe(b, max_pending=DEFAULT_MAX_PENDING)
        domain.publish(a, 0, b"z")
        assert len(domain.poll(fresh)) == 1

    def test_bad_max_pending_rejected(self, domain):
        member = domain.register()
        with pytest.raises(FanoutError):
            domain.subscribe(member, max_pending=0)

    def test_unknown_subscription_rejected(self, domain):
        with pytest.raises(FanoutError):
            domain.poll(999)

    def test_last_published_tracks_member(self, domain):
        a, b = domain.register(), domain.register()
        assert domain.last_published(a) == 0
        domain.publish(a, 0, b"x")
        domain.publish(b, 0, b"y")
        assert domain.last_published(a) == 1
        assert domain.last_published(b) == 2


class TestRegistry:
    def test_same_path_same_domain(self, tmp_path):
        path = tmp_path / "c.af"
        path.write_bytes(b"")
        assert domain_for(path) is domain_for(str(path))

    def test_different_paths_different_domains(self, tmp_path):
        a, b = tmp_path / "a.af", tmp_path / "b.af"
        a.write_bytes(b"")
        b.write_bytes(b"")
        assert domain_for(a) is not domain_for(b)
