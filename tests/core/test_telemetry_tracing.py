"""Cross-process tracing integration: one span tree per open.

The acceptance bar (ISSUE PR 4): a single ``read()`` on a fault-injected
remote active file yields one exported span tree linking app call →
channel frame → dispatch → retry attempts → origin exchange, with the
respawn (and any journal replay) as cause-labelled children.  Structure
— names, parentage, cause labels — is asserted; timestamps are not.
"""

import json

import pytest

from repro.core import create_active, open_active
from repro.core.dispatch import CONTROL_OP_ALIASES, canonical_control_op
from repro.core.faults import FaultPlane
from repro.core.telemetry import TELEMETRY
from repro.net import Address, FileServer, Network

NULL = "repro.sentinels.null:NullFilterSentinel"
REMOTE = "repro.sentinels.remotefile:RemoteFileSentinel"


@pytest.fixture
def traced():
    """Tracing on for the test, fully reset afterwards."""
    TELEMETRY.reset()
    TELEMETRY.enable_tracing()
    yield TELEMETRY
    TELEMETRY.disable_tracing()
    TELEMETRY.reset()


def _by_name(spans):
    index = {}
    for span in spans:
        index.setdefault(span.name, []).append(span)
    return index


def _parent_of(spans, span):
    return next((s for s in spans if s.sid == span.parent), None)


class TestLocalSpanTrees:
    def test_thread_strategy_read_chain(self, traced, make_active):
        path = make_active(NULL, data=b"payload")
        with open_active(path, "rb", strategy="thread") as stream:
            assert stream.read(7) == b"payload"
        spans = traced.spans()
        names = _by_name(spans)

        (root,) = names["file"]
        assert root.attrs["strategy"] == "thread"
        (app_read,) = names["app.read"]
        assert _parent_of(spans, app_read) is root
        # thread strategy: the frame crosses a LocalChannel in-process.
        frame = next(s for s in names["frame.read"])
        dispatch = next(s for s in names["dispatch.read"])
        assert frame.trace == root.trace == dispatch.trace
        assert _parent_of(spans, dispatch) is frame
        assert names["app.close"], "close must be traced too"

    def test_tracing_off_records_nothing(self, make_active):
        assert not TELEMETRY.tracing
        before = len(TELEMETRY.spans())
        path = make_active(NULL, data=b"x")
        with open_active(path, "rb", strategy="thread") as stream:
            stream.read()
        assert len(TELEMETRY.spans()) == before

    def test_trace_and_telemetry_accessors(self, traced, make_active):
        path = make_active(NULL, data=b"abc")
        with open_active(path, "rb", strategy="thread") as stream:
            stream.read(3)
            tree = stream.trace()
            assert tree["name"] == "file"
            assert any(c["name"] == "app.read" for c in tree["children"])
            view = stream.telemetry()
        assert view["file"]["reads"] == 1
        assert view["trace"]["name"] == "file"
        assert "transport" in view


class TestFaultInjectedRemoteTrace:
    """The acceptance scenario, seeded and deterministic in structure."""

    def _rig(self, tmp_path, **params):
        network = Network()
        server = network.bind(Address("origin", 7000), FileServer())
        server.put_file("data/blob", b"x" * 65536)
        path = str(tmp_path / "remote.af")
        create_active(path, REMOTE,
                      params={"address": "origin:7000", "path": "data/blob",
                              "cache": "memory", "block_size": 4096,
                              "retry_seed": 1, **params},
                      meta={"data": "memory"})
        return network, path

    def test_killed_host_yields_one_linked_span_tree(self, traced, tmp_path):
        network, path = self._rig(tmp_path, readahead=4)
        plane = FaultPlane(seed=7)
        plane.kill_host(after=0, times=1)
        with open_active(path, "rb", strategy="process-control",
                         network=network) as stream:
            plane.arm_host(stream.session.host)
            assert stream.read(16384) == b"x" * 16384
        assert plane.summary().get("send:kill", 0) == 1

        spans = traced.spans()
        names = _by_name(spans)
        (root,) = names["file"]
        # One trace covers everything, both processes included.
        assert {s.trace for s in spans} == {root.trace}
        assert len({s.pid for s in spans}) == 2, \
            "child-process spans must ship back on the reply"

        (app_read,) = names["app.read"]
        attempts = sorted(names["op.read"], key=lambda s: s.start_us)
        assert len(attempts) == 2
        assert [_parent_of(spans, a) for a in attempts] == [app_read] * 2
        assert attempts[0].status == "crashed"
        assert attempts[0].attrs == {"attempt": 1}
        assert attempts[1].attrs == {"attempt": 2, "cause": "retry"}

        (respawn,) = names["respawn"]
        assert respawn.attrs["cause"] == "crash"
        assert _parent_of(spans, respawn) is attempts[0]

        # attempt 2 carries the full cross-process chain down to the
        # origin exchange: frame -> dispatch -> bridge -> net.
        frame2 = next(s for s in names["frame.read"]
                      if _parent_of(spans, s) is attempts[1])
        dispatch2 = next(s for s in names["dispatch.read"]
                         if s.parent == frame2.sid)
        fill = next(s for s in names["cache.fill"]
                    if s.parent == dispatch2.sid)
        assert fill.attrs["cause"] == "demand"
        net_read = next(s for s in names["net.read"])
        bridge = _parent_of(spans, net_read)
        assert bridge.name == "bridge.read"
        assert "origin:7000" in net_read.attrs["address"]

    def test_exported_jsonl_is_one_tree(self, traced, tmp_path):
        network, path = self._rig(tmp_path)
        plane = FaultPlane(seed=5)
        plane.kill_host(after=0, times=1)
        with open_active(path, "rb", strategy="process-control",
                         network=network) as stream:
            plane.arm_host(stream.session.host)
            stream.read(4096)
        out = tmp_path / "trace.jsonl"
        count = traced.export_jsonl(out)
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == count > 0
        traces = {line["trace"] for line in lines}
        assert len(traces) == 1
        sids = {line["sid"] for line in lines}
        roots = [line for line in lines if line["parent"] not in sids]
        assert [r["name"] for r in roots] == ["file"]

    def test_respawn_replays_journal_ops_as_children(self, traced, tmp_path):
        path = str(tmp_path / "journal.af")
        create_active(path, NULL, data=b"0" * 64)
        plane = FaultPlane(seed=11)
        plane.kill_host(after=0, times=1)
        with open_active(path, "r+b", strategy="process-control") as stream:
            stream.write(b"A" * 8)          # journaled mutation
            stream.seek(0)
            plane.arm_host(stream.session.host)
            assert stream.read(8) == b"A" * 8   # crash -> respawn -> replay
        spans = traced.spans()
        names = _by_name(spans)
        (respawn,) = names["respawn"]
        (replay,) = names["journal.replay"]
        assert _parent_of(spans, replay) is respawn
        assert replay.attrs["ops"] == 1
        # the replayed write crossed the wire under the replay span
        replayed_frames = [s for s in names.get("frame.write", [])
                           if s.parent == replay.sid]
        assert replayed_frames, "replayed ops must appear as child frames"


class TestControlOpAliases:
    """Satellite: one canonical control-op name, aliases folded once."""

    def test_alias_table(self):
        assert CONTROL_OP_ALIASES == {"cache_stats": "cache-stats"}
        assert canonical_control_op("cache_stats") == "cache-stats"
        assert canonical_control_op("cache-stats") == "cache-stats"
        assert canonical_control_op("invalidate") == "invalidate"

    @pytest.mark.parametrize("strategy", ["inproc", "thread"])
    @pytest.mark.parametrize("spelling", ["cache-stats", "cache_stats"])
    def test_both_spellings_hit_same_handler(self, tmp_path, strategy,
                                             spelling):
        network = Network()
        server = network.bind(Address("origin", 7000), FileServer())
        server.put_file("data/blob", b"y" * 8192)
        path = str(tmp_path / "remote.af")
        create_active(path, REMOTE,
                      params={"address": "origin:7000", "path": "data/blob",
                              "cache": "memory"},
                      meta={"data": "memory"})
        with open_active(path, "rb", strategy=strategy,
                         network=network) as stream:
            stream.read(4096)
            fields, _ = stream.control(spelling)
        assert fields["cache"] == "memory"
        assert fields["misses"] >= 1
