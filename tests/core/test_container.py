"""Tests for the .af container format and its directory semantics."""

import os

import pytest
from hypothesis import given, strategies as st

from repro.core.container import (
    ACTIVE_SUFFIX,
    Container,
    is_active_path,
    sniff,
)
from repro.core.spec import SentinelSpec
from repro.errors import ContainerError, ContainerFormatError

SPEC = SentinelSpec("repro.sentinels.null:NullFilterSentinel", {"p": 1})


@pytest.fixture
def path(tmp_path):
    return tmp_path / "thing.af"


class TestRoundtrip:
    def test_create_load(self, path):
        Container.create(path, SPEC, data=b"body", meta={"m": True})
        loaded = Container.load(path)
        assert loaded.spec == SPEC
        assert loaded.data == b"body"
        assert loaded.meta == {"m": True}

    def test_empty_data_part(self, path):
        Container.create(path, SPEC)
        assert Container.load(path).data == b""

    def test_create_refuses_overwrite(self, path):
        Container.create(path, SPEC)
        with pytest.raises(ContainerError):
            Container.create(path, SPEC)

    def test_create_exist_ok(self, path):
        Container.create(path, SPEC, data=b"one")
        Container.create(path, SPEC, data=b"two", exist_ok=True)
        assert Container.load(path).data == b"two"

    def test_write_data_persists(self, path):
        container = Container.create(path, SPEC, data=b"old")
        container.write_data(b"new data")
        assert Container.load(path).data == b"new data"

    def test_read_data_sees_external_writer(self, path):
        container = Container.create(path, SPEC, data=b"old")
        other = Container.load(path)
        other.write_data(b"changed")
        assert container.data == b"old"  # stale snapshot
        assert container.read_data() == b"changed"

    @given(st.binary(max_size=2048))
    def test_arbitrary_data_roundtrips(self, body):
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            target = os.path.join(d, "x.af")
            Container.create(target, SPEC, data=body)
            assert Container.load(target).data == body


class TestFormatRobustness:
    def test_load_missing_file(self, path):
        with pytest.raises(ContainerError):
            Container.load(path)

    def test_bad_magic(self, path):
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(ContainerFormatError, match="bad magic"):
            Container.load(path)

    def test_too_short(self, path):
        path.write_bytes(b"AF")
        with pytest.raises(ContainerFormatError, match="too short"):
            Container.load(path)

    def test_truncated_header(self, path):
        Container.create(path, SPEC, data=b"x" * 100)
        blob = path.read_bytes()
        path.write_bytes(blob[:10])
        with pytest.raises(ContainerFormatError):
            Container.load(path)

    def test_truncated_data(self, path):
        Container.create(path, SPEC, data=b"x" * 100)
        blob = path.read_bytes()
        path.write_bytes(blob[:-50])
        with pytest.raises(ContainerFormatError, match="truncated"):
            Container.load(path)

    def test_header_not_json(self, path):
        header = b"this is not json"
        blob = b"AFC1" + len(header).to_bytes(4, "big") + header
        path.write_bytes(blob)
        with pytest.raises(ContainerFormatError, match="not JSON"):
            Container.load(path)

    def test_header_missing_spec(self, path):
        import json

        header = json.dumps({"meta": {}}).encode()
        blob = b"AFC1" + len(header).to_bytes(4, "big") + header
        path.write_bytes(blob)
        with pytest.raises(ContainerFormatError, match="missing 'spec'"):
            Container.load(path)

    def test_implausible_header_length(self, path):
        blob = b"AFC1" + (1 << 30).to_bytes(4, "big") + b"x" * 100
        path.write_bytes(blob)
        with pytest.raises(ContainerFormatError, match="implausible"):
            Container.load(path)


class TestDirectoryOperations:
    """Paper §2.1: directory operations act on both components at once."""

    def test_copy_carries_both_parts(self, path, tmp_path):
        original = Container.create(path, SPEC, data=b"payload")
        copy = original.copy_to(tmp_path / "copy.af")
        loaded = Container.load(tmp_path / "copy.af")
        assert loaded.spec == SPEC
        assert loaded.data == b"payload"
        # copies are independent afterwards
        copy.write_data(b"diverged")
        assert Container.load(path).data == b"payload"

    def test_rename(self, path, tmp_path):
        container = Container.create(path, SPEC, data=b"d")
        container.rename_to(tmp_path / "renamed.af")
        assert not path.exists()
        assert Container.load(tmp_path / "renamed.af").data == b"d"

    def test_delete(self, path):
        Container.create(path, SPEC).delete()
        assert not path.exists()


class TestDetection:
    def test_is_active_path(self):
        assert is_active_path("x" + ACTIVE_SUFFIX)
        assert not is_active_path("x.txt")

    def test_sniff(self, path, tmp_path):
        Container.create(path, SPEC)
        assert sniff(path)
        plain = tmp_path / "plain.bin"
        plain.write_bytes(b"not a container")
        assert not sniff(plain)
        assert not sniff(tmp_path / "absent")
