"""Acceptance tests for the pooled, multiplexed sentinel host.

The tentpole property: many opens of one container share one host
child and one framed connection, and operations from distinct opens
are concurrently in flight over it (pipelining), as evidenced by the
transport counters.
"""

import threading

from repro.core import create_active, open_active

NULL = "repro.sentinels.null:NullFilterSentinel"


class SlowRead:
    """Importable sentinel whose reads dawdle, to overlap operations."""

    def __new__(cls, params):
        import time

        from repro.core.sentinel import Sentinel

        class Impl(Sentinel):
            def on_read(self, ctx, offset, size):
                time.sleep(float(self.params.get("delay", 0.2)))
                return ctx.data.read_at(offset, size)

        return Impl(params)


class TestHostSharing:
    def test_concurrent_opens_share_one_host(self, tmp_path):
        path = tmp_path / "shared.af"
        create_active(path, NULL, data=b"payload")
        streams = [open_active(str(path), "rb", strategy="process-control")
                   for _ in range(4)]
        try:
            hosts = {id(stream.session.host) for stream in streams}
            assert len(hosts) == 1
            pids = {stream.session.host.proc.pid for stream in streams}
            assert len(pids) == 1
            for stream in streams:
                assert stream.read() == b"payload"
        finally:
            for stream in streams:
                stream.close()

    def test_mixed_strategies_share_one_host(self, tmp_path):
        path = tmp_path / "mixed.af"
        create_active(path, NULL, data=b"payload")
        control_stream = open_active(str(path), "rb",
                                     strategy="process-control")
        stream_stream = open_active(str(path), "rb", strategy="process")
        try:
            assert control_stream.session.host is stream_stream.session.host
            assert control_stream.read() == b"payload"
            assert stream_stream.read() == b"payload"
        finally:
            control_stream.close()
            stream_stream.close()

    def test_sessions_have_independent_channels(self, tmp_path):
        path = tmp_path / "indep.af"
        create_active(path, NULL, data=b"0123456789")
        a = open_active(str(path), "r+b", strategy="process-control")
        b = open_active(str(path), "rb", strategy="process-control")
        try:
            assert a.session._lease.chan != b.session._lease.chan
            a.seek(5)
            assert b.tell() == 0  # cursors are per-open
            assert b.read(3) == b"012"
            assert a.read(3) == b"567"
        finally:
            a.close()
            b.close()


class TestPipelining:
    def test_ops_from_distinct_opens_overlap_in_flight(self, tmp_path):
        """The ISSUE's acceptance bar: >= 2 operations from distinct opens
        of the same container concurrently in flight over one host
        connection, asserted via the transport counters."""
        path = tmp_path / "slow.af"
        create_active(path, f"{__name__}:SlowRead",
                      params={"delay": 0.3}, data=b"x" * 64)
        a = open_active(str(path), "rb", strategy="process-control")
        b = open_active(str(path), "rb", strategy="process-control")
        try:
            assert a.session.host is b.session.host
            channel = a.session.channel
            assert channel is b.session.channel

            threads = [threading.Thread(target=stream.read, args=(8,))
                       for stream in (a, b)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            snapshot = channel.counters.snapshot()
            assert snapshot["max_in_flight"] >= 2
            assert snapshot["per_op"]["read"]["count"] == 2
        finally:
            a.close()
            b.close()

    def test_pipelined_ops_overlap_in_time(self, tmp_path):
        """Two 0.3 s reads over one connection take well under 0.6 s."""
        import time

        path = tmp_path / "timed.af"
        create_active(path, f"{__name__}:SlowRead",
                      params={"delay": 0.3}, data=b"x" * 64)
        a = open_active(str(path), "rb", strategy="process-control")
        b = open_active(str(path), "rb", strategy="process-control")
        try:
            started = time.perf_counter()
            threads = [threading.Thread(target=stream.read, args=(8,))
                       for stream in (a, b)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            assert elapsed < 0.55, (
                f"two 0.3s reads took {elapsed:.3f}s: not pipelined")
        finally:
            a.close()
            b.close()

    def test_transport_stats_surface_on_file_object(self, tmp_path):
        path = tmp_path / "stats.af"
        create_active(path, NULL, data=b"abcdef")
        with open_active(str(path), "rb",
                         strategy="process-control") as stream:
            stream.read(3)
            stats = stream.transport_stats()
            assert stats is not None
            assert stats["per_op"]["read"]["count"] >= 1
            assert stats["replies_received"] >= 1

        with open_active(str(path), "rb", strategy="inproc") as stream:
            assert stream.transport_stats() is None


class TestPoolLifecycle:
    def test_host_retires_after_linger(self, tmp_path):
        import time

        path = tmp_path / "linger.af"
        create_active(path, NULL, data=b"data")
        stream = open_active(str(path), "rb", strategy="process-control")
        host = stream.session.host
        stream.read()
        stream.close()
        deadline = time.monotonic() + 5.0
        while host.proc.poll() is None and time.monotonic() < deadline:
            time.sleep(0.05)
        assert host.proc.poll() == 0  # clean EOF-driven exit

    def test_reopen_within_linger_reuses_host(self, tmp_path):
        path = tmp_path / "reuse.af"
        create_active(path, NULL, data=b"data")
        first = open_active(str(path), "rb", strategy="process-control")
        pid = first.session.host.proc.pid
        first.close()
        second = open_active(str(path), "rb", strategy="process-control")
        try:
            assert second.session.host.proc.pid == pid
            assert second.read() == b"data"
        finally:
            second.close()

    def test_dead_host_is_replaced_on_next_open(self, tmp_path):
        import signal

        path = tmp_path / "replace.af"
        create_active(path, NULL, data=b"data")
        first = open_active(str(path), "rb", strategy="process-control")
        proc = first.session.host.proc
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=5)
        second = open_active(str(path), "rb", strategy="process-control")
        try:
            assert second.session.host.proc.pid != proc.pid
            assert second.read() == b"data"
        finally:
            second.close()
            try:
                first.close()
            except Exception:
                pass  # the killed host surfaces as a crash; expected

    def test_exclusive_lease_gets_private_host(self, tmp_path):
        from repro.core.container import Container
        from repro.core.strategies import process_control

        path = tmp_path / "excl.af"
        create_active(path, NULL, data=b"data")
        container = Container.load(str(path))
        pooled = process_control.open_session(container)
        exclusive = process_control.open_session(container, pooled=False)
        try:
            assert pooled.host is not exclusive.host
            assert exclusive.read_at(0, 4) == b"data"
        finally:
            exclusive.close()
            pooled.close()
