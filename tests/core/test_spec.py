"""Tests for sentinel specs."""

import pytest

from repro.core.sentinel import Sentinel
from repro.core.spec import SentinelSpec
from repro.errors import SpecError


class GoodSentinel(Sentinel):
    pass


def good_factory(params):
    return GoodSentinel(params)


def bad_factory(params):
    return object()  # not a Sentinel


def exploding_factory(params):
    raise RuntimeError("boom")


NOT_CALLABLE = 42


class TestValidation:
    def test_requires_colon(self):
        with pytest.raises(SpecError):
            SentinelSpec(target="no_colon_here")

    @pytest.mark.parametrize("target", [":attr", "module:", ":"])
    def test_rejects_empty_halves(self, target):
        with pytest.raises(SpecError):
            SentinelSpec(target=target)

    def test_str(self):
        assert str(SentinelSpec("a.b:C")) == "a.b:C"


class TestSerialization:
    def test_roundtrip(self):
        spec = SentinelSpec("a.b:C", {"x": 1, "y": [1, 2]})
        assert SentinelSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_missing_target(self):
        with pytest.raises(SpecError):
            SentinelSpec.from_dict({"params": {}})

    def test_from_dict_bad_params(self):
        with pytest.raises(SpecError):
            SentinelSpec.from_dict({"target": "a:B", "params": [1, 2]})

    def test_from_dict_none_params(self):
        spec = SentinelSpec.from_dict({"target": "a:B", "params": None})
        assert spec.params == {}


class TestResolution:
    def test_resolves_class(self):
        spec = SentinelSpec(f"{__name__}:GoodSentinel", {"k": "v"})
        sentinel = spec.instantiate()
        assert isinstance(sentinel, GoodSentinel)
        assert sentinel.params == {"k": "v"}

    def test_resolves_factory_function(self):
        spec = SentinelSpec(f"{__name__}:good_factory")
        assert isinstance(spec.instantiate(), GoodSentinel)

    def test_resolves_dotted_attribute(self):
        spec = SentinelSpec(f"{__name__}:TestResolution.nested_factory")
        assert isinstance(spec.instantiate(), GoodSentinel)

    @staticmethod
    def nested_factory(params):
        return GoodSentinel(params)

    def test_missing_module(self):
        with pytest.raises(SpecError, match="cannot import"):
            SentinelSpec("no.such.module:X").resolve()

    def test_missing_attribute(self):
        with pytest.raises(SpecError, match="no attribute"):
            SentinelSpec(f"{__name__}:Nonexistent").resolve()

    def test_non_callable_target(self):
        with pytest.raises(SpecError, match="not callable"):
            SentinelSpec(f"{__name__}:NOT_CALLABLE").instantiate()

    def test_factory_returning_non_sentinel(self):
        with pytest.raises(SpecError, match="did not produce a Sentinel"):
            SentinelSpec(f"{__name__}:bad_factory").instantiate()

    def test_factory_raising(self):
        with pytest.raises(SpecError, match="failed: boom"):
            SentinelSpec(f"{__name__}:exploding_factory").instantiate()
