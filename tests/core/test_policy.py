"""Unit tests for the deadline/retry primitives (repro.core.policy)."""

import time

import pytest

from repro.core.policy import Deadline, RetryPolicy
from repro.errors import DeadlineExceededError, NetworkError, ServiceError


class TestDeadline:
    def test_after_and_remaining(self):
        d = Deadline.after(10.0)
        assert d.bounded
        remaining = d.remaining()
        assert 9.0 < remaining <= 10.0
        assert not d.expired()

    def test_never_is_unbounded(self):
        d = Deadline.never()
        assert not d.bounded
        assert d.remaining() is None
        assert d.timeout() is None
        assert not d.expired()
        d.check("anything")  # never raises

    def test_expired_clamps_and_raises(self):
        d = Deadline.after(0.0)
        assert d.expired()
        assert d.remaining() == 0.0
        with pytest.raises(DeadlineExceededError, match="slow thing"):
            d.check("slow thing")

    def test_deadline_error_is_a_timeout(self):
        # Callers guarding waits with the builtin must still catch it.
        with pytest.raises(TimeoutError):
            Deadline.after(0.0).check()

    def test_coerce_passthrough_number_none(self):
        d = Deadline.after(5.0)
        assert Deadline.coerce(d) is d
        assert Deadline.coerce(2.0).bounded
        assert not Deadline.coerce(None).bounded
        assert Deadline.coerce(None, default=1.0).bounded

    def test_wire_roundtrip_reanchors(self):
        d = Deadline.after(10.0)
        ms = d.to_ms()
        assert 9_000 < ms <= 10_000
        back = Deadline.from_ms(ms)
        assert 9.0 < back.remaining() <= 10.0
        assert Deadline.from_ms(None).remaining() is None
        assert Deadline.never().to_ms() is None

    def test_capped_takes_the_sooner(self):
        d = Deadline.after(10.0)
        capped = d.capped(1.0)
        assert capped.remaining() <= 1.0
        # capping an already-tighter deadline is a no-op
        tight = Deadline.after(0.5)
        assert tight.capped(60.0) is tight

    def test_sleep_clipped_to_budget(self):
        d = Deadline.after(0.05)
        start = time.monotonic()
        d.sleep(5.0)
        assert time.monotonic() - start < 1.0


class TestRetryPolicy:
    def test_seeded_schedule_is_deterministic(self):
        a = list(RetryPolicy(attempts=5, seed=42).delays())
        b = list(RetryPolicy(attempts=5, seed=42).delays())
        c = list(RetryPolicy(attempts=5, seed=7).delays())
        assert a == b
        assert a != c
        assert len(a) == 4  # one delay per retry

    def test_delays_bounded_by_max(self):
        policy = RetryPolicy(attempts=10, base_delay=0.1, multiplier=10.0,
                             max_delay=0.5, jitter=0.0)
        assert all(d <= 0.5 for d in policy.delays())

    def test_run_retries_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise NetworkError("transient")
            return "done"

        policy = RetryPolicy(attempts=3, base_delay=0.001, jitter=0.0)
        assert policy.run(flaky, retryable=NetworkError) == "done"
        assert len(calls) == 3

    def test_run_exhausts_and_reraises_last(self):
        policy = RetryPolicy(attempts=3, base_delay=0.001, jitter=0.0)
        calls = []

        def always_fails():
            calls.append(1)
            raise NetworkError(f"attempt {len(calls)}")

        with pytest.raises(NetworkError, match="attempt 3"):
            policy.run(always_fails, retryable=NetworkError)

    def test_run_never_retries_non_retryable(self):
        calls = []

        def rejected():
            calls.append(1)
            raise ServiceError("no")

        policy = RetryPolicy(attempts=5, base_delay=0.001)

        def predicate(exc):
            return isinstance(exc, NetworkError) \
                and not isinstance(exc, ServiceError)

        with pytest.raises(ServiceError):
            policy.run(rejected, retryable=predicate)
        assert len(calls) == 1

    def test_run_never_retries_non_idempotent(self):
        calls = []

        def fails():
            calls.append(1)
            raise NetworkError("boom")

        policy = RetryPolicy(attempts=5, base_delay=0.001)
        with pytest.raises(NetworkError):
            policy.run(fails, retryable=NetworkError, idempotent=False)
        assert len(calls) == 1

    def test_run_respects_deadline(self):
        policy = RetryPolicy(attempts=50, base_delay=0.02, jitter=0.0)
        start = time.monotonic()
        with pytest.raises(NetworkError):
            policy.run(lambda: (_ for _ in ()).throw(NetworkError("x")),
                       retryable=NetworkError,
                       deadline=Deadline.after(0.1))
        assert time.monotonic() - start < 2.0

    def test_on_retry_observer(self):
        seen = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise NetworkError("once")
            return "ok"

        policy = RetryPolicy(attempts=3, base_delay=0.001, jitter=0.0)
        policy.run(flaky, retryable=NetworkError,
                   on_retry=lambda exc, delay: seen.append((exc, delay)))
        assert len(seen) == 1
        assert isinstance(seen[0][0], NetworkError)
