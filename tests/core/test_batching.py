"""The submission/completion ring: batched ≡ one-at-a-time.

The ring is pure plumbing — coalescing ops into multi-op frames must be
*observationally invisible*.  These tests pin that equivalence three
ways:

* a hypothesis property over arbitrary op waves (sizes, failures):
  batched and unbatched legs produce byte-identical reply payloads,
  identical error surfacing, identical per-channel arrival order, and
  no hung futures — in both the event-loop and ``REPRO_HOST_MODE=threads``
  serving modes;
* the ``batch`` fault point: a dropped sub-op times out alone (its
  batch-mates complete, the ring drains instead of wedging), a
  corrupted sub-op errors alone;
* session integration: a pipelined wave through a real sentinel host
  returns the same bytes with batching on, off (``REPRO_NO_BATCH=1``),
  and the singleton passthrough keeps lone ops off the batch path.
"""

import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import channel as chanmod
from repro.core.channel import FIRST_SESSION_CHAN, LocalChannel
from repro.core.container import Container
from repro.core.control import raise_for_response
from repro.core.faults import FaultPlane
from repro.core.spec import SentinelSpec
from repro.core.strategies import process_control
from repro.errors import DeadlineExceededError

SPEC = SentinelSpec("repro.sentinels.null:NullFilterSentinel")


def pattern(n, salt=0):
    """Position-dependent bytes: any misplaced block shows as corruption."""
    return bytes((i * 31 + salt) % 256 for i in range(n))


class _Gate:
    """Holds the first op on the server until the whole wave is queued.

    The ring only coalesces while an op is outstanding — with nothing
    in flight every op flushes alone (the singleton passthrough).  A
    gated first op makes multi-op frames deterministic instead of a
    race against the server's reply latency.
    """

    def __init__(self):
        self.release = threading.Event()

    def handler(self, fields, payload):
        cmd = fields.get("cmd")
        if cmd != "echo":
            # A corrupted batch sub-op lands here as "corrupt:echo".
            raise ValueError(f"unknown cmd {cmd!r}")
        if fields.get("gate"):
            self.release.wait(10.0)
        if fields.get("boom"):
            raise RuntimeError(f"boom {fields['n']}")
        return ({"ok": True, "n": fields["n"], "ln": len(payload)},
                bytes(reversed(payload)))


def _run_wave(ops, *, batching, plane=None):
    """Issue *ops* as one pipelined wave; settle every future.

    Each op is ``(payload_size, boom)``.  Returns the observable
    outcome per op: ``("ok", n, echoed-bytes)`` or
    ``("err", error_type, message)`` — the tuple both legs must agree
    on exactly.
    """
    gate = _Gate()
    app, srv = LocalChannel.pair("batchwave")
    app.batching = batching
    if plane is not None:
        plane.arm_channel(app)
    srv.register(FIRST_SESSION_CHAN, gate.handler)
    try:
        pendings = []
        for index, (size, boom) in enumerate(ops):
            fields = {"cmd": "echo", "n": index}
            if index == 0:
                fields["gate"] = True
            if boom:
                fields["boom"] = True
            pendings.append(app.request_async(
                FIRST_SESSION_CHAN, fields, pattern(size, salt=index)))
        gate.release.set()
        outcomes = []
        for pending in pendings:
            fields, payload = pending.wait(10.0)
            if fields.get("ok", True):
                outcomes.append(("ok", fields["n"], payload))
            else:
                try:
                    raise_for_response(fields)
                except Exception as exc:
                    outcomes.append(("err", type(exc).__name__, str(exc)))
        assert app.counters.snapshot()["in_flight"] == 0
        return outcomes
    finally:
        app.close()


#: Op waves: payload size spans empty → multi-KiB, with sporadic
#: handler failures mixed in.
OPS = st.lists(st.tuples(st.integers(0, 4096), st.booleans()),
               min_size=1, max_size=40)


class TestEquivalenceProperty:
    @settings(max_examples=20, deadline=None)
    @given(ops=OPS)
    def test_batched_equals_one_at_a_time(self, ops):
        assert _run_wave(ops, batching=True) \
            == _run_wave(ops, batching=False)

    @settings(max_examples=10, deadline=None)
    @given(ops=OPS)
    def test_batched_equals_one_at_a_time_threads_mode(self, ops):
        """Same property with the legacy per-channel worker serving
        (its intake path unpacks multi-op frames too)."""
        saved = os.environ.get("REPRO_HOST_MODE")
        os.environ["REPRO_HOST_MODE"] = "threads"
        try:
            assert _run_wave(ops, batching=True) \
                == _run_wave(ops, batching=False)
        finally:
            if saved is None:
                os.environ.pop("REPRO_HOST_MODE", None)
            else:
                os.environ["REPRO_HOST_MODE"] = saved

    def test_wave_genuinely_batches(self):
        """The gated wave really exercises multi-op frames — otherwise
        the property above would be vacuously comparing singletons."""
        flushes = chanmod._BATCH_FLUSHES.value
        batched = chanmod._BATCH_OPS.value
        _run_wave([(64, False)] * 12, batching=True)
        assert chanmod._BATCH_FLUSHES.value > flushes
        assert chanmod._BATCH_OPS.value - batched >= 8

    def test_ordering_preserved_inside_frames(self):
        """Sub-ops execute in submission order on the server."""
        gate = _Gate()
        seen = []

        def recording(fields, payload):
            if fields.get("gate"):
                gate.release.wait(10.0)
            seen.append(fields["n"])
            return {"ok": True}, b""

        app, srv = LocalChannel.pair("batchorder")
        app.batching = True
        srv.register(FIRST_SESSION_CHAN, recording)
        try:
            pendings = [app.request_async(
                FIRST_SESSION_CHAN,
                {"cmd": "echo", "n": i, "gate": i == 0})
                for i in range(20)]
            gate.release.set()
            for pending in pendings:
                pending.wait(10.0)
            assert seen == list(range(20))
        finally:
            app.close()


class TestBatchFaults:
    def test_dropped_sub_op_times_out_alone(self):
        """A per-sub drop: the victim's future times out (and only
        its); batch-mates complete, and the ring drains rather than
        wedging — a follow-up op still goes through."""
        gate = _Gate()
        plane = FaultPlane(seed=3)
        plane.drop_batch_op(op="echo", times=1)
        app, srv = LocalChannel.pair("batchdrop")
        app.batching = True
        plane.arm_channel(app)
        srv.register(FIRST_SESSION_CHAN, gate.handler)
        try:
            pendings = [app.request_async(
                FIRST_SESSION_CHAN,
                {"cmd": "echo", "n": i, "gate": i == 0},
                pattern(32, salt=i)) for i in range(4)]
            gate.release.set()
            outcomes = []
            for pending in pendings:
                try:
                    fields, payload = pending.wait(1.0)
                    outcomes.append(("ok", fields["n"]))
                except DeadlineExceededError:
                    outcomes.append(("timeout", None))
            assert outcomes.count(("timeout", None)) == 1
            assert sum(plane.summary().values()) == 1
            # The timed-out wait withdrew and settled its ring slot;
            # the ring must not be wedged.
            fields, _ = app.request(FIRST_SESSION_CHAN,
                                    {"cmd": "echo", "n": 99},
                                    timeout=5.0)
            assert fields["n"] == 99
            assert app.counters.snapshot()["in_flight"] == 0
        finally:
            app.close()

    def test_corrupted_sub_op_errors_alone(self):
        """A mangled sub-op header errors out through its own future;
        every batch-mate is untouched."""
        gate = _Gate()
        plane = FaultPlane(seed=5)
        plane.corrupt_batch_op(op="echo", times=1)
        app, srv = LocalChannel.pair("batchcorrupt")
        app.batching = True
        plane.arm_channel(app)
        srv.register(FIRST_SESSION_CHAN, gate.handler)
        try:
            pendings = [app.request_async(
                FIRST_SESSION_CHAN,
                {"cmd": "echo", "n": i, "gate": i == 0},
                pattern(32, salt=i)) for i in range(4)]
            gate.release.set()
            errors = oks = 0
            for pending in pendings:
                fields, payload = pending.wait(10.0)
                if fields.get("ok", True):
                    oks += 1
                    assert payload == bytes(
                        reversed(pattern(32, salt=fields["n"])))
                else:
                    errors += 1
                    assert "corrupt:echo" in str(fields)
            assert (oks, errors) == (3, 1)
            assert sum(plane.summary().values()) == 1
        finally:
            app.close()

    def test_faults_never_touch_singletons(self):
        """The batch fault point only fires on genuinely multi-op
        frames; sequential (never-coalesced) traffic is exempt."""
        plane = FaultPlane(seed=7)
        plane.drop_batch_op(op="echo")  # would drop every match
        gate = _Gate()
        app, srv = LocalChannel.pair("batchsingle")
        app.batching = True
        plane.arm_channel(app)
        srv.register(FIRST_SESSION_CHAN, gate.handler)
        gate.release.set()
        try:
            for i in range(5):  # strictly sequential: one op in flight
                fields, _ = app.request(FIRST_SESSION_CHAN,
                                        {"cmd": "echo", "n": i},
                                        timeout=5.0)
                assert fields["n"] == i
            assert sum(plane.summary().values()) == 0
        finally:
            app.close()


def _open(tmp, name, data=b"", env=()):
    for key, value in env:
        os.environ[key] = value
    try:
        path = os.path.join(str(tmp), name)
        container = Container.create(path, SPEC, data=data)
        return process_control.open_session(container, pooled=False)
    finally:
        for key, _value in env:
            os.environ.pop(key, None)


class TestSessionIntegration:
    """The ring under a real sentinel host (wire transport + hostloop)."""

    DATA = pattern(256 * 1024)

    def _pipelined_read(self, session, offsets, size):
        lease = session._lease
        pendings = [lease.request_async(
            {"cmd": "read", "offset": offset, "size": size})
            for offset in offsets]
        chunks = []
        for pending in pendings:
            fields, payload = pending.wait(10.0)
            raise_for_response(fields)
            chunks.append(payload)
        return chunks

    @pytest.mark.parametrize("env", [(), (("REPRO_NO_BATCH", "1"),)],
                             ids=["batched", "no-batch"])
    def test_pipelined_reads_are_byte_identical(self, tmp_path, env):
        session = _open(tmp_path, "wave.af", data=self.DATA, env=env)
        try:
            if env:
                assert session.host.channel.batching is False
            offsets = [i * 4096 for i in range(24)]
            chunks = self._pipelined_read(session, offsets, 4096)
            for offset, chunk in zip(offsets, chunks):
                assert chunk == self.DATA[offset:offset + 4096]
        finally:
            session.close()

    def test_sequential_ops_ride_the_plain_frame(self, tmp_path):
        """One-at-a-time traffic never waits on the ring and never
        produces a multi-op frame — the singleton passthrough."""
        flushes = chanmod._BATCH_FLUSHES.value
        session = _open(tmp_path, "seq.af", data=self.DATA)
        try:
            assert session.host.channel.batching is True
            for offset in (0, 8192, 65536):
                assert session.read_at(offset, 1024) \
                    == self.DATA[offset:offset + 1024]
            assert chanmod._BATCH_FLUSHES.value == flushes
        finally:
            session.close()

    def test_pipelined_writes_land_in_order(self, tmp_path):
        """Overlapping batched writes apply in submission order, so
        last-writer-wins reads back deterministically."""
        session = _open(tmp_path, "wr.af")
        try:
            lease = session._lease
            pendings = [lease.request_async(
                {"cmd": "write", "offset": 0},
                bytes([salt]) * 4096) for salt in range(1, 9)]
            for pending in pendings:
                fields, _ = pending.wait(10.0)
                raise_for_response(fields)
            assert session.read_at(0, 4096) == bytes([8]) * 4096
        finally:
            session.close()
