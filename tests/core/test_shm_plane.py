"""The shared-memory bulk-data plane: allocator, validation, crash safety.

Three layers of properties:

* the slab allocator itself — contiguous runs, generation stamps,
  park/settle quarantine, idempotent destruction;
* child-side validation — stale descriptors and corrupt bytes are
  rejected with typed errors, torn reads are detected post-copy;
* the session integration — shm and inline transfers are byte-identical
  (including under injected shm faults, which must degrade to inline
  retries), and a killed host's slots are never read by its successor.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import shm as shmplane
from repro.core.container import Container
from repro.core.faults import FaultPlane
from repro.core.shm import AttachedSegment, ShmPlane
from repro.core.spec import SentinelSpec
from repro.core.strategies import process_control
from repro.errors import ShmCorruptError, ShmError, ShmStaleGenerationError

SPEC = SentinelSpec("repro.sentinels.null:NullFilterSentinel")

#: The CI matrix runs one leg with the plane killed; tests that assert
#: the plane *engages* are meaningless there (the allocator and child
#: validation tests still run — they never consult the kill switch).
requires_shm = pytest.mark.skipif(
    bool(os.environ.get(shmplane.ENV_KILL_SWITCH)),
    reason=f"shared-memory plane disabled via {shmplane.ENV_KILL_SWITCH}")

#: Comfortably above SHM_MIN_BYTES so the plane engages.
BULK = shmplane.SHM_MIN_BYTES * 4


def pattern(n, salt=0):
    """Position-dependent bytes: any misplaced block shows as corruption."""
    return bytes((i * 31 + salt) % 256 for i in range(n))


@pytest.fixture
def plane():
    p = ShmPlane(slots=8, slot_bytes=1024)
    yield p
    p.destroy()


class TestSlabAllocator:
    def test_lease_stage_take_roundtrip(self, plane):
        lease = plane.lease(1500)
        assert lease is not None and lease.nslots == 2
        desc = lease.stage((b"a" * 700, b"b" * 800))
        assert desc[0] == lease.slot and desc[1] == 1500
        assert lease.take(desc[1], desc[3]) == b"a" * 700 + b"b" * 800
        plane.release(lease)

    def test_contiguous_runs_and_exhaustion(self, plane):
        runs = [plane.lease(2048) for _ in range(4)]  # 8 slots total
        assert all(r is not None for r in runs)
        assert plane.free_slots() == 0
        assert plane.lease(1) is None          # full
        assert plane.lease(9 * 1024) is None   # larger than the segment
        # Free a middle run: only a fitting request succeeds.
        plane.release(runs[1])
        assert plane.lease(3 * 1024) is None   # no 3-slot contiguous hole
        again = plane.lease(2048)
        assert again is not None and again.slot == runs[1].slot

    def test_release_invalidates_descriptors(self, plane):
        lease = plane.lease(100)
        desc = lease.stage((b"x" * 100,))
        plane.release(lease)
        with pytest.raises(ShmStaleGenerationError):
            lease.take(desc[1], desc[3])

    def test_release_is_harmless_and_gen_monotonic(self, plane):
        lease = plane.lease(10)
        gen0 = lease.generation
        plane.release(lease)
        plane.release(lease)
        assert plane._generation(lease.slot) > gen0

    def test_park_and_settle(self, plane):
        lease = plane.lease(1024)
        plane.park(7, lease, None)             # None leases are skipped
        assert plane.free_slots() == plane.slots - 1
        plane.settle(99)                       # other channel: still parked
        assert plane.free_slots() == plane.slots - 1
        plane.settle(7)
        assert plane.free_slots() == plane.slots

    def test_destroy_is_idempotent_and_guards_views(self, plane):
        lease = plane.lease(64)
        desc = lease.stage((b"y" * 64,))
        plane.destroy()
        plane.destroy()
        assert plane.destroyed
        assert plane.lease(10) is None
        plane.release(lease)                   # no-op, no crash
        with pytest.raises(ShmError):
            lease.take(desc[1], desc[3])


class TestChildValidation:
    """The attached (child) side must reject anything inconsistent."""

    def test_attach_read_fill_seal(self, plane):
        seg = AttachedSegment.attach(plane.name, plane.slots,
                                     plane.slot_bytes)
        try:
            lease = plane.lease(900)
            desc = lease.stage((pattern(900),))
            assert seg.read_desc(desc) == pattern(900)
            # Reply direction: child fills the offered run, seals it.
            offer = lease.reply_desc()
            _, view = seg.fill_view(offer)
            view[:300] = pattern(300, salt=5)
            sealed = seg.seal(offer, view[:300])
            view.release()  # an exported view would block segment close
            assert lease.take(sealed[1], sealed[3]) == pattern(300, salt=5)
        finally:
            seg.close()

    def test_stale_and_corrupt_rejected(self, plane):
        plane.checksums = True  # corruption detection is CRC-gated
        seg = AttachedSegment.attach(plane.name, plane.slots,
                                     plane.slot_bytes)
        try:
            lease = plane.lease(500)
            desc = lease.stage((pattern(500),))
            lease.scribble()
            with pytest.raises(ShmCorruptError):
                seg.read_desc(desc)
            desc = lease.stage((pattern(500),))  # restage: CRC fresh again
            lease.invalidate()
            with pytest.raises(ShmStaleGenerationError):
                seg.read_desc(desc)
            with pytest.raises(ShmStaleGenerationError):
                seg.fill_view(lease.reply_desc()[:2] + [desc[2]])
        finally:
            seg.close()

    def test_malformed_descriptors_rejected(self, plane):
        seg = AttachedSegment.attach(plane.name, plane.slots,
                                     plane.slot_bytes)
        try:
            for bad in ([99, 10, 1, 0],          # slot out of range
                        [0, 10**9, 1, 0],        # overruns the segment
                        [0, -1, 1, 0],           # negative length
                        ["a", "b"], None, [1]):  # not a descriptor
                with pytest.raises(ShmError):
                    seg.read_desc(bad)
        finally:
            seg.close()


def _open(tmp, name, data=b""):
    path = os.path.join(str(tmp), name)
    container = Container.create(path, SPEC, data=data)
    return process_control.open_session(container, pooled=False)


@requires_shm
class TestSessionIntegration:
    def test_bulk_write_read_uses_the_plane(self, tmp_path):
        session = _open(tmp_path, "bulk.af")
        try:
            assert session.host.shm_ready
            leased = shmplane.SLOTS_LEASED.value
            data = pattern(BULK)
            assert session.write_at(0, data) == len(data)
            assert session.read_at(0, len(data)) == data
            assert shmplane.SLOTS_LEASED.value > leased
        finally:
            session.close()

    def test_read_at_into_lands_in_callers_buffer(self, tmp_path):
        data = pattern(BULK, salt=3)
        session = _open(tmp_path, "into.af", data=data)
        try:
            buffer = bytearray(len(data) + 10)
            count = session.read_at_into(0, memoryview(buffer))
            assert count == len(data)
            assert bytes(buffer[:count]) == data
        finally:
            session.close()

    def test_small_payloads_stay_inline(self, tmp_path):
        session = _open(tmp_path, "small.af")
        try:
            leased = shmplane.SLOTS_LEASED.value
            session.write_at(0, b"t" * 1024)
            assert session.read_at(0, 1024) == b"t" * 1024
            assert shmplane.SLOTS_LEASED.value == leased
        finally:
            session.close()

    @pytest.mark.parametrize("fault,op", [("corrupt_shm_slot", "write"),
                                          ("stale_shm_generation", "write"),
                                          ("stale_shm_generation", "read")])
    def test_shm_faults_degrade_to_inline(self, tmp_path, fault, op):
        """An injected slot fault costs a retry, never correctness."""
        data = pattern(BULK, salt=7)
        session = _open(tmp_path, "faulty.af",
                        data=data if op == "read" else b"")
        try:
            session.host.shm.checksums = True  # arm corruption detection
            plane = FaultPlane(seed=1)
            getattr(plane, fault)(op=op, times=1)
            plane.arm_host(session.host)
            fallbacks = shmplane.FALLBACK_INLINE.value
            if op == "write":
                assert session.write_at(0, data) == len(data)
                assert session.read_at(0, len(data)) == data
            else:
                assert session.read_at(0, len(data)) == data
            assert shmplane.FALLBACK_INLINE.value == fallbacks + 1
            assert sum(plane.summary().values()) == 1
        finally:
            session.close()

    def test_kill_mid_stream_never_resurrects_old_slots(self, tmp_path):
        """A successor host must not observe the dead host's segment.

        The write journal replays inline onto the respawned host, so
        acked mutations survive even though every slot descriptor from
        the previous incarnation is gone with its segment.
        """
        session = _open(tmp_path, "killed.af")
        try:
            first_host = session.host
            first_plane = first_host.shm
            data = pattern(BULK, salt=9)
            assert session.write_at(0, data) == len(data)
            plane = FaultPlane(seed=2)
            plane.kill_host(times=1)
            plane.arm_host(first_host)
            more = pattern(BULK, salt=11)
            assert session.write_at(len(data), more) == len(more)
            assert session.host is not first_host
            assert first_plane.destroyed          # old slots unreachable
            assert session.host.shm is not first_plane
            assert session.host.shm_ready          # fresh segment re-armed
            assert session.read_at(0, 2 * BULK) == data + more
        finally:
            session.close()


@requires_shm
class TestShmInlineEquivalence:
    """Property: REPRO_NO_SHM on/off is observationally invisible."""

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 2**16),
           ops=st.lists(
               st.tuples(st.booleans(),
                         st.integers(0, 2 * BULK),
                         st.integers(1, 2 * BULK)),
               min_size=1, max_size=5))
    def test_same_ops_same_bytes(self, tmp_path_factory, seed, ops):
        def run(inline: bool):
            tmp = tmp_path_factory.mktemp("equiv")
            if inline:
                os.environ[shmplane.ENV_KILL_SWITCH] = "1"
            try:
                session = _open(tmp, "blob.af")
            finally:
                os.environ.pop(shmplane.ENV_KILL_SWITCH, None)
            try:
                assert session.host.shm_ready is not inline
                out = []
                for is_write, offset, size in ops:
                    if is_write:
                        out.append(session.write_at(
                            offset, pattern(size, salt=seed)))
                    else:
                        out.append(session.read_at(offset, size))
                out.append(session.read_at(0, 4 * BULK))
                return out
            finally:
                session.close()

        assert run(inline=False) == run(inline=True)

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(0, 2**16),
           after=st.integers(0, 2))
    def test_equivalence_holds_under_shm_faults(self, tmp_path_factory,
                                                seed, after):
        """Same seeded fault schedule, shm on: output still inline's."""
        tmp = tmp_path_factory.mktemp("chaos")
        session = _open(tmp, "blob.af")
        try:
            session.host.shm.checksums = True
            fault = FaultPlane(seed)
            fault.corrupt_shm_slot(after=after, times=1)
            fault.stale_shm_generation(op="read", after=after, times=1)
            fault.arm_host(session.host)
            blocks = [pattern(BULK, salt=seed + i) for i in range(4)]
            for i, block in enumerate(blocks):
                assert session.write_at(i * BULK, block) == BULK
            assert session.read_at(0, 4 * BULK) == b"".join(blocks)
        finally:
            session.close()
