"""Tests for the network bridge between application and sentinel child.

These tests exercise the bridge in-process over a pipe-backed channel
pair; the integration tests exercise it across a real child interpreter.
"""

import os
import threading

import pytest

from repro.core.channel import StreamChannel
from repro.core.netproxy import BRIDGE_CHAN, NetworkBridgeServer, ProxyNetwork
from repro.errors import AddressError, NetworkError
from repro.net import Address, FileServer, Network


@pytest.fixture
def bridged():
    """A (network, proxy, cleanup) triple wired over OS pipes."""
    network = Network()
    network.bind(Address("files", 1), FileServer({"f.txt": b"bridge data"}))

    req_read, req_write = os.pipe()
    resp_read, resp_write = os.pipe()
    app_end = StreamChannel(
        os.fdopen(req_read, "rb", buffering=0),
        os.fdopen(resp_write, "wb", buffering=0),
        name="test-bridge-app",
    )
    app_end.register(BRIDGE_CHAN, NetworkBridgeServer(network).handle)
    app_end.start()

    child_end = StreamChannel(
        os.fdopen(resp_read, "rb", buffering=0),
        os.fdopen(req_write, "wb", buffering=0),
        name="test-bridge-child",
    )
    child_end.start()
    proxy = ProxyNetwork(child_end)

    def cleanup():
        child_end.close()
        app_end.wait_closed(timeout=2.0)

    yield network, proxy, cleanup
    cleanup()


class TestProxyCalls:
    def test_roundtrip(self, bridged):
        _, proxy, _ = bridged
        connection = proxy.connect(Address("files", 1))
        response = connection.expect("read", path="f.txt", offset=0, size=6)
        assert response.payload == b"bridge"

    def test_payload_crosses_both_ways(self, bridged):
        network, proxy, _ = bridged
        connection = proxy.connect(Address("files", 1))
        connection.expect("write", b"NEW!", path="f.txt", offset=0)
        response = connection.expect("read", path="f.txt", offset=0, size=4)
        assert response.payload == b"NEW!"

    def test_protocol_failure_is_response_not_exception(self, bridged):
        _, proxy, _ = bridged
        connection = proxy.connect(Address("files", 1))
        response = connection.call("read", path="ghost", offset=0, size=1)
        assert not response.ok
        assert "no such file" in response.error

    def test_expect_raises_on_failure(self, bridged):
        _, proxy, _ = bridged
        connection = proxy.connect(Address("files", 1))
        with pytest.raises(NetworkError):
            connection.expect("read", path="ghost", offset=0, size=1)

    def test_transport_error_type_preserved(self, bridged):
        _, proxy, _ = bridged
        connection = proxy.connect(Address("nowhere", 9))
        with pytest.raises(AddressError):
            connection.call("read")

    def test_partition_propagates_as_network_error(self, bridged):
        network, proxy, _ = bridged
        network.partition(Address("files", 1))
        connection = proxy.connect(Address("files", 1))
        with pytest.raises(NetworkError):
            connection.call("read", path="f.txt", offset=0, size=1)

    def test_closed_connection_rejected(self, bridged):
        _, proxy, _ = bridged
        connection = proxy.connect(Address("files", 1))
        connection.close()
        with pytest.raises(NetworkError):
            connection.call("read")

    def test_concurrent_callers_pipeline_safely(self, bridged):
        _, proxy, _ = bridged
        connection = proxy.connect(Address("files", 1))
        errors = []

        def caller():
            try:
                for _ in range(25):
                    response = connection.expect("read", path="f.txt",
                                                 offset=0, size=11)
                    assert response.payload == b"bridge data"
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=caller) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_bridge_dies_with_channel(self, bridged):
        _, proxy, cleanup = bridged
        cleanup()  # closing the child side must end the bridge endpoint
        connection = proxy.connect(Address("files", 1))
        with pytest.raises(NetworkError):
            connection.call("read", path="f.txt", offset=0, size=1)
