"""Tests for the ActiveFile object's io integration."""

import io

import pytest

from repro.core import open_active
from repro.errors import UnsupportedOperationError

NULL = "repro.sentinels.null:NullFilterSentinel"


@pytest.fixture
def stream(make_active):
    path = make_active(NULL, data=b"line one\nline two\nline three\n")
    with open_active(path, "r+b", strategy="inproc") as handle:
        yield handle


class TestIoIntegration:
    def test_is_raw_io(self, stream):
        assert isinstance(stream, io.RawIOBase)

    def test_buffered_reader_wraps(self, make_active):
        path = make_active(NULL, data=b"abc\ndef\n")
        raw = open_active(path, "rb", strategy="inproc")
        with io.BufferedReader(raw) as buffered:
            assert buffered.readline() == b"abc\n"
            assert buffered.readline() == b"def\n"

    def test_text_wrapper(self, make_active):
        path = make_active(NULL, data="héllo\nwörld\n".encode("utf-8"))
        raw = open_active(path, "rb", strategy="thread")
        with io.TextIOWrapper(io.BufferedReader(raw), encoding="utf-8") as text:
            assert text.read() == "héllo\nwörld\n"

    def test_readinto(self, stream):
        buffer = bytearray(8)
        assert stream.readinto(buffer) == 8
        assert bytes(buffer) == b"line one"

    def test_readall(self, stream):
        assert stream.readall() == b"line one\nline two\nline three\n"

    def test_iteration_via_buffered(self, make_active):
        path = make_active(NULL, data=b"a\nb\nc\n")
        with io.BufferedReader(open_active(path, "rb", strategy="inproc")) as b:
            assert list(b) == [b"a\n", b"b\n", b"c\n"]

    def test_flags(self, stream):
        assert stream.readable() and stream.writable() and stream.seekable()

    def test_context_manager_closes(self, make_active):
        path = make_active(NULL, data=b"x")
        with open_active(path, "rb", strategy="inproc") as handle:
            pass
        assert handle.closed

    def test_repr_mentions_strategy(self, stream):
        assert "inproc" in repr(stream)

    def test_bad_whence(self, stream):
        with pytest.raises(ValueError):
            stream.seek(0, 9)

    def test_negative_seek_target(self, stream):
        with pytest.raises(ValueError):
            stream.seek(-1)

    def test_truncate_defaults_to_position(self, stream):
        stream.seek(4)
        assert stream.truncate() == 4
        stream.seek(0)
        assert stream.read() == b"line"

    def test_strategy_property(self, stream):
        assert stream.strategy == "inproc"
        assert stream.session.strategy == "inproc"


class TestModeParsing:
    def test_invalid_mode_rejected(self, make_active):
        path = make_active(NULL)
        for bad in ("x", "rw", "rbb", "q+"):
            with pytest.raises(ValueError):
                open_active(path, bad, strategy="inproc")

    def test_plus_modes_read_and_write(self, make_active):
        path = make_active(NULL, data=b"orig")
        with open_active(path, "w+b", strategy="inproc") as handle:
            handle.write(b"new")
            handle.seek(0)
            assert handle.read() == b"new"


class TestStreamModeFileObject:
    def test_stream_read_is_not_seekable(self, make_active):
        path = make_active(NULL, data=b"data")
        with open_active(path, "rb", strategy="process") as handle:
            assert not handle.seekable()
            assert handle.read(2) == b"da"
            with pytest.raises(UnsupportedOperationError):
                handle.seek(0)

    def test_flush_noop_without_control(self, make_active):
        path = make_active(NULL, data=b"data")
        with open_active(path, "rb", strategy="process") as handle:
            handle.flush()  # must not raise


class TestFileStats:
    def test_counters_track_operations(self, make_active):
        path = make_active(NULL, data=b"0123456789")
        with open_active(path, "r+b", strategy="inproc") as handle:
            handle.read(4)
            handle.seek(0)
            handle.write(b"ab")
            handle.read(2)
            stats = handle.stats
        assert stats.reads == 2
        assert stats.bytes_read == 6
        assert stats.writes == 1
        assert stats.bytes_written == 2
        assert stats.seeks == 1

    def test_control_counter(self, make_active):
        path = make_active("repro.sentinels.logfile:ConcurrentLogSentinel")
        with open_active(path, "r+b", strategy="inproc") as handle:
            handle.control("stats")
            assert handle.stats.controls == 1

    def test_short_reads_count_actual_bytes(self, make_active):
        path = make_active(NULL, data=b"abc")
        with open_active(path, "rb", strategy="inproc") as handle:
            handle.read(100)
            assert handle.stats.bytes_read == 3
