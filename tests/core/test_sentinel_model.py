"""Direct tests of the sentinel programming model itself."""

import pytest

from repro.core.datapart import MemoryDataPart
from repro.core.sentinel import Sentinel, SentinelContext, StreamSentinel
from repro.errors import UnsupportedOperationError
from repro.net import Address, FileServer, Network


class TestDefaultSentinelIsNullFilter:
    """A bare Sentinel must behave exactly like a passive file."""

    @pytest.fixture
    def pair(self):
        sentinel = Sentinel({"extra": 1})
        ctx = SentinelContext(data=MemoryDataPart(b"passive bytes"))
        return sentinel, ctx

    def test_params_captured(self, pair):
        sentinel, _ = pair
        assert sentinel.params == {"extra": 1}

    def test_read_passthrough(self, pair):
        sentinel, ctx = pair
        assert sentinel.on_read(ctx, 0, 7) == b"passive"

    def test_write_passthrough(self, pair):
        sentinel, ctx = pair
        assert sentinel.on_write(ctx, 0, b"ACTIVE!") == 7
        assert ctx.data.getvalue() == b"ACTIVE! bytes"

    def test_size_truncate_flush(self, pair):
        sentinel, ctx = pair
        assert sentinel.on_size(ctx) == 13
        sentinel.on_truncate(ctx, 4)
        assert sentinel.on_size(ctx) == 4
        sentinel.on_flush(ctx)  # no-op, must not raise

    def test_lifecycle_hooks_are_noops(self, pair):
        sentinel, ctx = pair
        sentinel.on_open(ctx)
        sentinel.on_close(ctx)

    def test_control_unsupported_by_default(self, pair):
        sentinel, ctx = pair
        with pytest.raises(UnsupportedOperationError):
            sentinel.on_control(ctx, "custom", {}, b"")


class TestStreamModeAdaptation:
    """Default generate()/consume() walk the offset handlers."""

    def test_generate_walks_data_part(self):
        sentinel = Sentinel()
        sentinel.stream_chunk = 4
        ctx = SentinelContext(data=MemoryDataPart(b"0123456789"))
        assert list(sentinel.generate(ctx)) == [b"0123", b"4567", b"89"]

    def test_generate_empty_data(self):
        sentinel = Sentinel()
        ctx = SentinelContext(data=MemoryDataPart())
        assert list(sentinel.generate(ctx)) == []

    def test_consume_writes_at_offset(self):
        sentinel = Sentinel()
        ctx = SentinelContext(data=MemoryDataPart())
        assert sentinel.consume(ctx, b"abc", 0) == 3
        assert sentinel.consume(ctx, b"def", 3) == 3
        assert ctx.data.getvalue() == b"abcdef"


class TestStreamSentinelRefusesRandomAccess:
    def test_reads_writes_rejected(self):
        sentinel = StreamSentinel()
        ctx = SentinelContext()
        with pytest.raises(UnsupportedOperationError):
            sentinel.on_read(ctx, 0, 1)
        with pytest.raises(UnsupportedOperationError):
            sentinel.on_write(ctx, 0, b"x")
        with pytest.raises(UnsupportedOperationError):
            sentinel.consume(ctx, b"x", 0)

    def test_default_generate_is_empty(self):
        assert list(StreamSentinel().generate(SentinelContext())) == []


class TestContextConnect:
    def test_connect_requires_network(self):
        ctx = SentinelContext()
        with pytest.raises(UnsupportedOperationError, match="no network"):
            ctx.connect("host:1")

    def test_connect_parses_string_addresses(self):
        network = Network()
        network.bind(Address("svc", 9), FileServer({"f": b"x"}))
        ctx = SentinelContext(network=network)
        connection = ctx.connect("svc:9")
        assert connection.expect("read", path="f", offset=0, size=1) \
            .payload == b"x"

    def test_connect_accepts_address_objects(self):
        network = Network()
        network.bind(Address("svc", 9), FileServer())
        ctx = SentinelContext(network=network)
        assert ctx.connect(Address("svc", 9)) is not None

    def test_connect_with_scheme_url(self):
        network = Network()
        network.bind(Address("web", 80, "http"), FileServer())
        ctx = SentinelContext(network=network)
        assert ctx.connect("http://web:80/some/path") is not None
