"""Cross-strategy behaviour tests.

The paper's central transparency claim is that every strategy presents
the same file semantics; these tests drive identical operation
sequences through all four §4 strategies and assert identical outcomes,
plus the documented capability differences of the simple process
strategy.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Container, create_active, open_active
from repro.errors import (
    SentinelCrashError,
    StrategyError,
    UnsupportedOperationError,
)
from tests.conftest import ALL_STRATEGIES, CONTROL_STRATEGIES, FAST_STRATEGIES

NULL = "repro.sentinels.null:NullFilterSentinel"


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestSequentialEquivalence:
    """Sequential read of the data part behaves identically everywhere."""

    def test_full_read(self, make_active, strategy):
        path = make_active(NULL, data=b"the quick brown fox")
        with open_active(path, "rb", strategy=strategy) as stream:
            assert stream.read() == b"the quick brown fox"

    def test_chunked_read(self, make_active, strategy):
        path = make_active(NULL, data=b"0123456789")
        with open_active(path, "rb", strategy=strategy) as stream:
            assert stream.read(3) == b"012"
            assert stream.read(3) == b"345"
            assert stream.read(100) == b"6789"
            assert stream.read(5) == b""

    def test_empty_file(self, make_active, strategy):
        path = make_active(NULL)
        with open_active(path, "rb", strategy=strategy) as stream:
            assert stream.read() == b""


@pytest.mark.parametrize("strategy", CONTROL_STRATEGIES)
class TestRandomAccess:
    def test_seek_and_read(self, make_active, strategy):
        path = make_active(NULL, data=b"0123456789")
        with open_active(path, "rb", strategy=strategy) as stream:
            stream.seek(4)
            assert stream.read(3) == b"456"
            stream.seek(-2, 2)
            assert stream.read() == b"89"
            stream.seek(1, 0)
            stream.seek(2, 1)
            assert stream.tell() == 3

    def test_write_persists_to_container(self, make_active, strategy):
        path = make_active(NULL, data=b"aaaa")
        with open_active(path, "r+b", strategy=strategy) as stream:
            stream.seek(2)
            assert stream.write(b"ZZ") == 2
        assert Container.load(path).data == b"aaZZ"

    def test_getsize_tracks_writes(self, make_active, strategy):
        path = make_active(NULL, data=b"ab")
        with open_active(path, "r+b", strategy=strategy) as stream:
            assert stream.getsize() == 2
            stream.seek(0, 2)
            stream.write(b"cdef")
            assert stream.getsize() == 6

    def test_truncate(self, make_active, strategy):
        path = make_active(NULL, data=b"0123456789")
        with open_active(path, "r+b", strategy=strategy) as stream:
            stream.truncate(4)
            stream.seek(0)
            assert stream.read() == b"0123"

    def test_w_mode_truncates_at_open(self, make_active, strategy):
        path = make_active(NULL, data=b"previous")
        with open_active(path, "wb", strategy=strategy) as stream:
            stream.write(b"new")
        assert Container.load(path).data == b"new"

    def test_append_mode(self, make_active, strategy):
        path = make_active(NULL, data=b"log:")
        with open_active(path, "ab", strategy=strategy) as stream:
            assert stream.tell() == 4
            stream.write(b"entry")
        assert Container.load(path).data == b"log:entry"

    def test_write_past_end_zero_fills(self, make_active, strategy):
        path = make_active(NULL, data=b"ab")
        with open_active(path, "r+b", strategy=strategy) as stream:
            stream.seek(5)
            stream.write(b"z")
            stream.seek(0)
            assert stream.read() == b"ab\x00\x00\x00z"

    def test_custom_control_roundtrip(self, make_active, strategy, tmp_path):
        path = make_active(
            "repro.sentinels.logfile:ConcurrentLogSentinel", data=b""
        )
        with open_active(path, "r+b", strategy=strategy) as stream:
            stream.write(b"hello\n")
            fields, _ = stream.control("stats")
            assert fields["records"] == 1

    def test_unsupported_control_op_raises(self, make_active, strategy):
        path = make_active(NULL)
        with open_active(path, "rb", strategy=strategy) as stream:
            with pytest.raises(UnsupportedOperationError):
                stream.control("no_such_op")


class TestProcessStrategyLimits:
    """§4.1: bare pipes support only sequential read/write."""

    def test_seek_raises(self, make_active):
        path = make_active(NULL, data=b"abc")
        with open_active(path, "rb", strategy="process") as stream:
            assert not stream.seekable()
            with pytest.raises(UnsupportedOperationError):
                stream.seek(1)

    def test_getsize_raises(self, make_active):
        path = make_active(NULL, data=b"abc")
        with open_active(path, "rb", strategy="process") as stream:
            with pytest.raises(UnsupportedOperationError):
                stream.getsize()

    def test_control_raises(self, make_active):
        path = make_active(NULL, data=b"abc")
        with open_active(path, "rb", strategy="process") as stream:
            with pytest.raises(UnsupportedOperationError):
                stream.control("anything")

    def test_w_mode_rejected(self, make_active):
        path = make_active(NULL, data=b"abc")
        with pytest.raises(StrategyError):
            open_active(path, "wb", strategy="process")

    def test_sequential_write_reaches_container(self, make_active):
        path = make_active(NULL, data=b"")
        with open_active(path, "r+b", strategy="process") as stream:
            stream.write(b"streamed bytes")
        assert Container.load(path).data == b"streamed bytes"


class TestStrategyAliases:
    def test_paper_aliases_resolve(self, make_active):
        path = make_active(NULL, data=b"x")
        for alias in ("dll", "dll-only", "dll-with-thread",
                      "process-plus-control"):
            with open_active(path, "rb", strategy=alias) as stream:
                assert stream.read() == b"x"

    def test_unknown_strategy(self, make_active):
        path = make_active(NULL)
        with pytest.raises(StrategyError, match="unknown strategy"):
            open_active(path, "rb", strategy="carrier-pigeon")


class TestGeneratorAcrossStrategies:
    """Endless generated files behave identically on every strategy."""

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_random_bytes_deterministic(self, make_active, strategy):
        path = make_active("repro.sentinels.generate:RandomBytesSentinel",
                           params={"seed": 42}, meta={"data": "memory"})
        with open_active(path, "rb", strategy=strategy) as stream:
            first = stream.read(64)
        assert len(first) == 64
        with open_active(path, "rb", strategy="inproc") as stream:
            assert stream.read(64) == first

    @pytest.mark.parametrize("strategy", FAST_STRATEGIES)
    def test_counter_lines(self, make_active, strategy):
        path = make_active("repro.sentinels.generate:CounterSentinel",
                           params={"width": 4, "count": 3},
                           meta={"data": "memory"})
        with open_active(path, "rb", strategy=strategy) as stream:
            assert stream.read() == b"0000\n0001\n0002\n"


class TestMultipleOpens:
    """§2.2: multiple opens create multiple sentinels."""

    @pytest.mark.parametrize("strategy", FAST_STRATEGIES)
    def test_two_concurrent_opens(self, make_active, strategy):
        path = make_active(NULL, data=b"shared")
        a = open_active(path, "rb", strategy=strategy)
        b = open_active(path, "rb", strategy=strategy)
        try:
            assert a.read(3) == b"sha"
            assert b.read(6) == b"shared"
            assert a.read() == b"red"
        finally:
            a.close()
            b.close()

    def test_mixed_strategy_opens(self, make_active):
        path = make_active(NULL, data=b"shared")
        with open_active(path, "rb", strategy="inproc") as a, \
                open_active(path, "rb", strategy="thread") as b:
            assert a.read() == b.read() == b"shared"


class TestFailureInjection:
    def test_sentinel_crash_on_open_process_control(self, make_active):
        path = make_active("no.such.module:Sentinel")
        stream = None
        with pytest.raises((SentinelCrashError, Exception)):
            stream = open_active(path, "rb", strategy="process-control")
            stream.read(1)
        if stream is not None:
            with pytest.raises(SentinelCrashError):
                stream.close()

    def test_sentinel_crash_on_open_inproc(self, make_active):
        from repro.errors import SpecError

        path = make_active("no.such.module:Sentinel")
        with pytest.raises(SpecError):
            open_active(path, "rb", strategy="inproc")

    def test_operations_after_close_rejected(self, make_active):
        path = make_active(NULL, data=b"x")
        stream = open_active(path, "rb", strategy="inproc")
        stream.close()
        with pytest.raises(ValueError):
            stream.read(1)
        stream.close()  # double close is fine

    @pytest.mark.parametrize("strategy", FAST_STRATEGIES)
    def test_read_only_mode_blocks_writes(self, make_active, strategy):
        path = make_active(NULL, data=b"x")
        with open_active(path, "rb", strategy=strategy) as stream:
            with pytest.raises(UnsupportedOperationError):
                stream.write(b"y")

    def test_write_only_mode_blocks_reads(self, make_active):
        path = make_active(NULL, data=b"x")
        with open_active(path, "ab", strategy="inproc") as stream:
            with pytest.raises(UnsupportedOperationError):
                stream.read(1)


class TestPropertyEquivalence:
    """Property: any op sequence matches a reference buffer (null filter)."""

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("read"), st.integers(0, 64), st.integers(0, 64)),
            st.tuples(st.just("write"), st.integers(0, 64),
                      st.binary(min_size=1, max_size=32)),
        ),
        max_size=12,
    ), strategy=st.sampled_from(FAST_STRATEGIES))
    def test_matches_reference(self, tmp_path, ops, strategy):
        from repro.util.bytesbuf import ByteBuffer

        path = tmp_path / f"prop-{abs(hash(str(ops))) % 10**8}.af"
        if not path.exists():
            create_active(path, NULL, data=b"seed data!")
        reference = ByteBuffer(Container.load(path).data)
        with open_active(str(path), "r+b", strategy=strategy) as stream:
            for op in ops:
                if op[0] == "read":
                    _, offset, size = op
                    stream.seek(offset)
                    assert stream.read(size) == reference.read_at(offset, size)
                else:
                    _, offset, data = op
                    stream.seek(offset)
                    stream.write(data)
                    reference.write_at(offset, data)
        assert Container.load(path).data == reference.getvalue()


class TestCrossStrategyEquivalenceIncludingProcess:
    """The same random op script yields identical results under the
    in-process strategies and the real child-process strategy."""

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("read"), st.integers(0, 48), st.integers(0, 48)),
            st.tuples(st.just("write"), st.integers(0, 48),
                      st.binary(min_size=1, max_size=24)),
        ),
        min_size=1, max_size=6,
    ))
    def test_process_control_matches_inproc(self, tmp_path, ops):
        def run(strategy, path):
            create_active(path, NULL, data=b"common seed", exist_ok=True)
            outputs = []
            with open_active(str(path), "r+b", strategy=strategy) as stream:
                for op in ops:
                    if op[0] == "read":
                        _, offset, size = op
                        stream.seek(offset)
                        outputs.append(stream.read(size))
                    else:
                        _, offset, data = op
                        stream.seek(offset)
                        stream.write(data)
                stream.seek(0)
                outputs.append(stream.read())
            return outputs, Container.load(path).data

        key = abs(hash(str(ops))) % 10**8
        result_a = run("inproc", tmp_path / f"a{key}.af")
        result_b = run("process-control", tmp_path / f"b{key}.af")
        assert result_a == result_b
