"""Tests for sentinel sandboxing (§2.3)."""

import pytest

from repro.core import create_active, open_active
from repro.core.sandbox import SandboxPolicy, SandboxedSentinel, sandbox_spec
from repro.core.sentinel import SentinelContext
from repro.core.spec import SentinelSpec
from repro.errors import SandboxViolation, SpecError
from repro.net import Address, FileServer, Network

NULL = SentinelSpec("repro.sentinels.null:NullFilterSentinel")


def make_sandboxed(policy: SandboxPolicy, spec: SentinelSpec = NULL,
                   network=None):
    sentinel = sandbox_spec(spec, policy).instantiate()
    ctx = SentinelContext(network=network)
    ctx.data.write_at(0, b"0123456789" * 10)
    sentinel.on_open(ctx)
    return sentinel, ctx


class TestPolicySerialization:
    def test_roundtrip(self):
        policy = SandboxPolicy(max_op_bytes=5, max_total_bytes=100,
                               max_operations=7, allow_writes=False,
                               allow_truncate=False,
                               allowed_control_ops=("stats",),
                               allowed_hosts=("files",))
        assert SandboxPolicy.from_params(policy.to_params()) == policy

    def test_none_collections_roundtrip(self):
        policy = SandboxPolicy()
        restored = SandboxPolicy.from_params(policy.to_params())
        assert restored.allowed_control_ops is None
        assert restored.allowed_hosts is None


class TestIoLimits:
    def test_per_op_limit(self):
        sentinel, ctx = make_sandboxed(SandboxPolicy(max_op_bytes=8))
        assert sentinel.on_read(ctx, 0, 8) == b"01234567"
        with pytest.raises(SandboxViolation, match="per-op limit"):
            sentinel.on_read(ctx, 0, 9)

    def test_total_byte_budget(self):
        sentinel, ctx = make_sandboxed(SandboxPolicy(max_total_bytes=20))
        sentinel.on_read(ctx, 0, 10)
        sentinel.on_read(ctx, 0, 10)
        with pytest.raises(SandboxViolation, match="I/O budget"):
            sentinel.on_read(ctx, 0, 1)

    def test_operation_budget(self):
        sentinel, ctx = make_sandboxed(SandboxPolicy(max_operations=2))
        sentinel.on_read(ctx, 0, 1)
        sentinel.on_read(ctx, 0, 1)
        with pytest.raises(SandboxViolation, match="operation budget"):
            sentinel.on_read(ctx, 0, 1)

    def test_write_denial(self):
        sentinel, ctx = make_sandboxed(SandboxPolicy(allow_writes=False))
        assert sentinel.on_read(ctx, 0, 4) == b"0123"
        with pytest.raises(SandboxViolation, match="writes denied"):
            sentinel.on_write(ctx, 0, b"x")

    def test_truncate_denial(self):
        sentinel, ctx = make_sandboxed(SandboxPolicy(allow_truncate=False))
        with pytest.raises(SandboxViolation):
            sentinel.on_truncate(ctx, 0)

    def test_writes_count_toward_budget(self):
        sentinel, ctx = make_sandboxed(SandboxPolicy(max_total_bytes=10))
        sentinel.on_write(ctx, 0, b"x" * 10)
        with pytest.raises(SandboxViolation):
            sentinel.on_write(ctx, 0, b"y")


class TestControlOps:
    def test_allowlist_enforced(self):
        spec = SentinelSpec("repro.sentinels.logfile:ConcurrentLogSentinel")
        sentinel, ctx = make_sandboxed(
            SandboxPolicy(allowed_control_ops=("stats",)), spec)
        fields, _ = sentinel.on_control(ctx, "stats", {}, b"")
        assert "records" in fields
        with pytest.raises(SandboxViolation, match="denied"):
            sentinel.on_control(ctx, "compact", {"keep": 0}, b"")

    def test_sandbox_stats_always_available(self):
        sentinel, ctx = make_sandboxed(SandboxPolicy(allowed_control_ops=()))
        sentinel.on_read(ctx, 0, 4)
        fields, _ = sentinel.on_control(ctx, "sandbox_stats", {}, b"")
        assert fields["operations"] == 1
        assert fields["total_bytes"] == 4


class TestNetworkGuard:
    def test_allowed_host_passes(self):
        network = Network()
        network.bind(Address("files", 1), FileServer({"f": b"data"}))
        spec = SentinelSpec("repro.sentinels.remotefile:RemoteFileSentinel",
                            {"address": "files:1", "path": "f"})
        sentinel, ctx = make_sandboxed(
            SandboxPolicy(allowed_hosts=("files",)), spec, network=network)
        assert sentinel.on_read(ctx, 0, 4) == b"data"

    def test_forbidden_host_blocked_at_open(self):
        network = Network()
        network.bind(Address("evil", 1), FileServer({"f": b"data"}))
        spec = SentinelSpec("repro.sentinels.remotefile:RemoteFileSentinel",
                            {"address": "evil:1", "path": "f"})
        policy = SandboxPolicy(allowed_hosts=("files",))
        sentinel = sandbox_spec(spec, policy).instantiate()
        ctx = SentinelContext(network=network)
        with pytest.raises(SandboxViolation, match="evil"):
            sentinel.on_open(ctx)

    def test_empty_allowlist_blocks_everything(self):
        network = Network()
        network.bind(Address("files", 1), FileServer({"f": b"d"}))
        spec = SentinelSpec("repro.sentinels.remotefile:RemoteFileSentinel",
                            {"address": "files:1", "path": "f"})
        sentinel = sandbox_spec(spec, SandboxPolicy(allowed_hosts=())) \
            .instantiate()
        with pytest.raises(SandboxViolation):
            sentinel.on_open(SentinelContext(network=network))


class TestThroughStrategies:
    """Policy violations surface through every transport as exceptions."""

    @pytest.mark.parametrize("strategy", ["inproc", "thread",
                                          "process-control"])
    def test_violation_round_trips(self, tmp_path, strategy):
        path = tmp_path / "boxed.af"
        create_active(path, sandbox_spec(NULL,
                                         SandboxPolicy(allow_writes=False)),
                      data=b"readable")
        with open_active(str(path), "r+b", strategy=strategy) as stream:
            assert stream.read(8) == b"readable"
            with pytest.raises(SandboxViolation):
                stream.write(b"nope")
            # session survives the violation
            stream.seek(0)
            assert stream.read(4) == b"read"

    def test_sandboxed_file_via_interception(self, tmp_path):
        from repro.core import MediatingConnector

        path = tmp_path / "boxed.af"
        create_active(path, sandbox_spec(NULL, SandboxPolicy(
            max_total_bytes=1 << 16)), data=b"legacy sees me\n")
        with MediatingConnector():
            with open(path) as stream:
                assert stream.read() == "legacy sees me\n"


class TestValidation:
    def test_requires_target(self):
        with pytest.raises(SpecError):
            SandboxedSentinel({"policy": {}})
