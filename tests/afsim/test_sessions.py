"""Tests for the simulated strategy sessions and stub injection."""

import pytest

from repro.afsim.backings import (
    DiskBacking,
    MemoryBacking,
    RemoteBacking,
    make_backing,
)
from repro.afsim.sessions import SIM_STRATEGIES, open_session
from repro.afsim.stubs import ActiveFileRuntime
from repro.errors import SimulationError
from repro.ntos import Kernel, NTFileSystem, NetDevice, RemoteHost, Win32


def build_machine():
    kernel = Kernel()
    fs = NTFileSystem(kernel)
    app = kernel.create_process("app")
    return kernel, fs, app


class TestBackings:
    def test_make_backing_by_name(self):
        kernel, fs, _ = build_machine()
        assert isinstance(make_backing(kernel, "network"), RemoteBacking)
        assert isinstance(make_backing(kernel, "disk", fs=fs), DiskBacking)
        assert isinstance(make_backing(kernel, "memory"), MemoryBacking)
        with pytest.raises(SimulationError):
            make_backing(kernel, "tape")

    def test_memory_backing_roundtrip(self):
        kernel, _, app = build_machine()
        backing = MemoryBacking(kernel, size=64)

        def main():
            backing.write(0, b"hello")
            assert backing.read(0, 5) == b"hello"

        kernel.create_thread(app, main)
        kernel.run()
        assert kernel.now > 0

    def test_disk_backing_wraps_offsets(self):
        kernel, fs, app = build_machine()
        backing = DiskBacking(kernel, fs, size=64)

        def main():
            backing.write(100, b"xy")  # wraps to 100 % 64 = 36
            assert backing.read(36, 2) == b"xy"

        kernel.create_thread(app, main)
        kernel.run()

    def test_remote_read_blocks_for_rtt(self):
        kernel, _, app = build_machine()
        backing = RemoteBacking(kernel, RemoteHost(kernel, NetDevice(kernel)))

        def main():
            data = backing.read(0, 256)
            assert len(data) == 256

        kernel.create_thread(app, main)
        kernel.run()
        assert kernel.now >= 2 * kernel.costs.net_latency_us

    def test_remote_write_cheaper_than_read(self):
        def run(op):
            kernel, _, app = build_machine()
            backing = RemoteBacking(kernel,
                                    RemoteHost(kernel, NetDevice(kernel)))
            if op == "read":
                kernel.create_thread(app, lambda: backing.read(0, 64))
            else:
                kernel.create_thread(app, lambda: backing.write(0, b"x" * 64))
            return kernel.run()

        assert run("write") < run("read")


@pytest.mark.parametrize("strategy", SIM_STRATEGIES)
class TestSessionsReturnData:
    def test_sequential_reads(self, strategy):
        kernel, fs, app = build_machine()
        results = []

        def main():
            backing = MemoryBacking(kernel)
            session = open_session(strategy, kernel, app, backing)
            for _ in range(4):
                results.append(len(session.read(128)))
            session.close()

        kernel.create_thread(app, main)
        kernel.run()
        assert results == [128, 128, 128, 128]

    def test_sequential_writes(self, strategy):
        kernel, fs, app = build_machine()

        def main():
            backing = MemoryBacking(kernel)
            session = open_session(strategy, kernel, app, backing)
            for _ in range(4):
                session.write(b"z" * 64)
            session.close()
            session.settle()

        kernel.create_thread(app, main)
        assert kernel.run() > 0

    def test_close_terminates_all_threads(self, strategy):
        kernel, fs, app = build_machine()

        def main():
            session = open_session(strategy, kernel, app,
                                   MemoryBacking(kernel))
            session.read(8)
            session.close()

        kernel.create_thread(app, main)
        kernel.run()  # would deadlock/hang if sentinel threads leaked


class TestStrategyCostOrdering:
    """The paper's central quantitative claim, at the session level."""

    def run_reads(self, strategy, path="memory", calls=50, block=512):
        kernel, fs, app = build_machine()

        def main():
            backing = make_backing(kernel, path, fs=fs)
            session = open_session(strategy, kernel, app, backing)
            start = kernel.now
            for _ in range(calls):
                session.read(block)
            main.elapsed = kernel.now - start
            session.close()

        kernel.create_thread(app, main)
        kernel.run()
        return main.elapsed / calls

    def test_process_heavier_than_thread_heavier_than_dll(self):
        process = self.run_reads("process-control")
        thread = self.run_reads("thread")
        dll = self.run_reads("dll")
        assert process > thread > dll

    def test_dll_near_zero_on_memory_path(self):
        assert self.run_reads("dll") < 10.0

    def test_unknown_strategy_rejected(self):
        kernel, fs, app = build_machine()
        with pytest.raises(SimulationError):
            open_session("carrier-pigeon", kernel, app, MemoryBacking(kernel))


class TestStreamProcessPrefetch:
    def test_stream_reads_benefit_from_pump_readahead(self):
        """§4.1 pipes pump eagerly; sequential reads overlap the backing."""
        def per_op(strategy):
            kernel, fs, app = build_machine()

            def main():
                backing = make_backing(kernel, "network")
                session = open_session(strategy, kernel, app, backing,
                                       **({"chunk": 512}
                                          if strategy == "process" else {}))
                start = kernel.now
                for _ in range(50):
                    session.read(512)
                main.elapsed = kernel.now - start
                session.close()

            kernel.create_thread(app, main)
            kernel.run()
            return main.elapsed / 50

        assert per_op("process") < per_op("process-control")


class TestStubInjection:
    def test_unmodified_app_gets_active_file(self):
        kernel, fs, app = build_machine()
        fs.create("doc.af", b"")
        fs.create("plain.txt", b"passive contents")
        win32 = Win32(kernel, app, fs)
        runtime = ActiveFileRuntime(
            kernel, win32,
            lambda path: open_session("dll", kernel, app,
                                      MemoryBacking(kernel)),
        ).install()
        results = {}

        def legacy_app():
            # this function knows nothing about active files
            active = win32.CreateFile("doc.af")
            passive = win32.CreateFile("plain.txt")
            results["active"] = win32.ReadFile(active, 16)
            results["passive"] = win32.ReadFile(passive, 16)
            win32.CloseHandle(active)
            win32.CloseHandle(passive)

        kernel.create_thread(app, legacy_app)
        kernel.run()
        assert len(results["active"]) == 16
        assert results["passive"] == b"passive contents"
        assert runtime.opened == 1

    def test_iat_records_mediation(self):
        kernel, fs, app = build_machine()
        win32 = Win32(kernel, app, fs)
        ActiveFileRuntime(kernel, win32, lambda path: None).install()
        assert {"CreateFile", "ReadFile", "WriteFile"} <= app.iat.mediated

    def test_double_install_is_idempotent(self):
        kernel, fs, app = build_machine()
        win32 = Win32(kernel, app, fs)
        runtime = ActiveFileRuntime(kernel, win32, lambda path: None)
        runtime.install()
        before = dict(win32.iat._entries)
        runtime.install()
        assert win32.iat._entries == before
