"""Tests for the Figure 2 transcription and thread join primitives."""

import pytest

from repro.afsim.figure2 import build_figure2_machine
from repro.errors import SimulationError
from repro.ntos import Kernel


class TestJoin:
    def test_join_finished_thread_returns(self):
        kernel = Kernel()
        process = kernel.create_process("p")
        worker = kernel.create_thread(process, lambda: None, "w")

        def main():
            kernel.yield_cpu()  # let the worker finish
            kernel.join(worker)

        kernel.create_thread(process, main, "m")
        kernel.run()

    def test_join_blocks_until_exit(self):
        kernel = Kernel()
        process = kernel.create_process("p")
        trace = []

        def worker():
            for _ in range(3):
                trace.append("work")
                kernel.yield_cpu()

        def main():
            handle = kernel.create_thread(process, worker, "w")
            kernel.join(handle)
            trace.append("joined")

        kernel.create_thread(process, main, "m")
        kernel.run()
        assert trace == ["work", "work", "work", "joined"]

    def test_join_self_rejected(self):
        kernel = Kernel()
        process = kernel.create_process("p")
        holder = {}

        def main():
            kernel.join(holder["me"])

        holder["me"] = kernel.create_thread(process, main, "m")
        with pytest.raises(SimulationError):
            kernel.run()

    def test_join_all(self):
        kernel = Kernel()
        process = kernel.create_process("p")
        done = []

        def main():
            workers = [kernel.create_thread(process,
                                            lambda i=i: done.append(i),
                                            f"w{i}")
                       for i in range(3)]
            kernel.join_all(workers)
            done.append("all")

        kernel.create_thread(process, main, "m")
        kernel.run()
        assert done == [0, 1, 2, "all"]


class TestFigure2:
    def test_read_pump_reaches_app_and_cache(self):
        source = b"remote payload " * 100
        kernel, handles, fs = build_figure2_machine(source)
        received = []
        app_process = kernel.create_process("app")

        def app():
            while True:
                chunk = handles.hout.read(512)
                if not chunk:
                    break
                received.append(chunk)
            handles.hin.close_write()

        kernel.create_thread(app_process, app, "app")
        kernel.run()
        assert b"".join(received) == source
        # "writes it to the data file (the cache)"
        assert fs._files["cache.dat"][""].getvalue() == source

    def test_write_pump_reaches_cache_and_source(self):
        kernel, handles, fs = build_figure2_machine(b"")
        echoed = []
        app_process = kernel.create_process("app")

        def app():
            handles.hin.write(b"app wrote this")
            handles.hin.close_write()
            while True:
                chunk = handles.hpipe_out.read(64)
                if not chunk:
                    return
                echoed.append(chunk)

        kernel.create_thread(app_process, app, "app")
        kernel.run()
        assert b"".join(echoed) == b"app wrote this"
        assert fs._files["cache.dat"][""].getvalue() == b"app wrote this"

    def test_sentinel_main_waits_for_both_pumps(self):
        source = b"x" * 2048
        kernel, handles, fs = build_figure2_machine(source)
        app_process = kernel.create_process("app")

        def app():
            handles.hin.close_write()
            while handles.hout.read(1024):
                pass

        kernel.create_thread(app_process, app, "app")
        kernel.run()  # would deadlock if join_all misbehaved
        pump_kinds = {kind for kind, _ in handles.log}
        assert pump_kinds == {"read-pump"}

    def test_deterministic(self):
        def run():
            kernel, handles, _ = build_figure2_machine(b"d" * 5000)
            app_process = kernel.create_process("app")

            def app():
                handles.hin.close_write()
                while handles.hout.read(700):
                    pass

            kernel.create_thread(app_process, app, "app")
            return kernel.run()

        assert run() == run()
