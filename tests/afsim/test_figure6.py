"""Tests for the Figure 6 harness: the paper's claims, as assertions.

These run the actual measurement at a reduced call count — the shape
claims are scale-invariant (verified at 1000 calls by the benchmark
harness and ``--check``).
"""

import pytest

from repro.afsim.figure6 import (
    BLOCK_SIZES,
    PANELS,
    check_claims,
    format_panel,
    main,
    run_panel,
)
from repro.afsim.workload import measure_point
from repro.errors import SimulationError
from repro.ntos.costs import CostModel

CALLS = 150


@pytest.fixture(scope="module")
def figure6():
    """One full figure at reduced calls, shared across this module."""
    return {
        panel: {op: run_panel(panel, op, calls=CALLS)
                for op in ("read", "write")}
        for panel in PANELS
    }


class TestQualitativeClaims:
    @pytest.mark.parametrize("panel", ["a", "b", "c"])
    @pytest.mark.parametrize("op", ["read", "write"])
    def test_all_claims_hold(self, figure6, panel, op):
        problems = check_claims(figure6[panel][op], panel, op)
        assert problems == []

    @pytest.mark.parametrize("panel", ["a", "b", "c"])
    @pytest.mark.parametrize("op", ["read", "write"])
    def test_strategy_ordering(self, figure6, panel, op):
        series = figure6[panel][op]
        for block in BLOCK_SIZES:
            assert series["process"][block].per_op_us \
                > series["thread"][block].per_op_us \
                > series["dll"][block].per_op_us

    def test_read_latency_exceeds_write_for_process(self, figure6):
        """Reads are blocking round trips; writes are pipelined."""
        for panel in ("a", "c"):
            series_read = figure6[panel]["read"]
            series_write = figure6[panel]["write"]
            for block in BLOCK_SIZES:
                assert series_read["process"][block].per_op_us \
                    > series_write["process"][block].per_op_us

    def test_paths_ordered_at_matching_points(self, figure6):
        """network > memory and disk > memory for every strategy/size."""
        for op in ("read",):
            for curve in ("process", "thread", "dll"):
                for block in BLOCK_SIZES:
                    network = figure6["a"][op][curve][block].per_op_us
                    disk = figure6["b"][op][curve][block].per_op_us
                    memory = figure6["c"][op][curve][block].per_op_us
                    assert network > memory
                    assert disk > memory

    def test_dll_matches_baseline(self, figure6):
        for panel in PANELS:
            for op in ("read", "write"):
                series = figure6[panel][op]
                for block in BLOCK_SIZES:
                    dll = series["dll"][block].per_op_us
                    base = series["baseline"][block].per_op_us
                    assert abs(dll - base) <= 3.0 + 0.15 * base

    def test_endpoints_in_paper_ballpark(self, figure6):
        """Process@2048 within 2x of the paper's printed y-axis tops."""
        from repro.afsim.figure6 import PAPER_TOPS_US

        for (panel, op), paper_top in PAPER_TOPS_US.items():
            measured = figure6[panel][op]["process"][2048].per_op_us
            assert paper_top / 2 < measured < paper_top * 2, \
                f"{panel}/{op}: {measured} vs paper {paper_top}"


class TestDeterminism:
    def test_identical_points_identical_times(self):
        a = measure_point("thread", "memory", "read", 512, calls=40)
        b = measure_point("thread", "memory", "read", 512, calls=40)
        assert a.total_us == b.total_us

    def test_per_op_is_total_over_calls(self):
        result = measure_point("dll", "memory", "read", 64, calls=10)
        assert result.per_op_us == pytest.approx(result.total_us / 10)


class TestWorkloadValidation:
    def test_unknown_strategy(self):
        with pytest.raises(SimulationError):
            measure_point("hovercraft", "memory", "read", 8)

    def test_unknown_op(self):
        with pytest.raises(SimulationError):
            measure_point("dll", "memory", "append", 8)

    def test_unknown_path(self):
        with pytest.raises(SimulationError):
            measure_point("dll", "floppy", "read", 8)

    def test_costs_override_changes_results(self):
        cheap = measure_point("thread", "memory", "read", 512, calls=30)
        pricey = measure_point(
            "thread", "memory", "read", 512, calls=30,
            costs=CostModel().tuned(thread_switch_us=500.0),
        )
        assert pricey.per_op_us > cheap.per_op_us + 500

    def test_counters_populated(self):
        result = measure_point("process-control", "memory", "read", 64,
                               calls=20)
        assert result.context_switches > 20
        assert result.syscalls > 40


class TestHarnessCli:
    def test_main_runs_one_panel(self, capsys):
        assert main(["--panel", "c", "--op", "read", "--calls", "50"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6(c) Read" in out
        assert "Process" in out and "DLL" in out

    def test_main_check_passes(self, capsys):
        assert main(["--panel", "c", "--op", "both", "--calls", "120",
                     "--check"]) == 0
        assert "ALL CLAIMS HOLD" in capsys.readouterr().out

    def test_format_panel_mentions_paper_axis(self, figure6):
        text = format_panel(figure6["a"]["read"], "a", "read")
        assert "paper y-max" in text
        assert "560.0" in text


class TestAsciiPlot:
    def test_render_contains_all_curves(self, figure6):
        from repro.afsim.plot import render_ascii_panel

        text = render_ascii_panel(figure6["a"]["read"], "a", "read")
        for glyph in ("P", "T", "D"):
            assert glyph in text
        assert "2048" in text
        assert "P=process" in text

    def test_plot_flag_in_cli(self, capsys):
        assert main(["--panel", "c", "--op", "read", "--calls", "40",
                     "--plot"]) == 0
        out = capsys.readouterr().out
        assert "(block size, B)" in out


class TestJsonExport:
    def test_json_to_file(self, tmp_path, capsys):
        import json

        target = tmp_path / "fig6.json"
        assert main(["--panel", "c", "--op", "read", "--calls", "40",
                     "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["calls_per_point"] == 40
        curves = payload["panels"]["c"]["read"]
        assert set(curves) == {"process", "thread", "dll", "baseline"}
        assert curves["process"]["2048"] > curves["dll"]["2048"]

    def test_json_to_stdout(self, capsys):
        assert main(["--panel", "c", "--op", "read", "--calls", "40",
                     "--json", "-"]) == 0
        assert '"panels"' in capsys.readouterr().out


def test_ascii_plot_single_block_size():
    """Degenerate axis (one sample) must still render."""
    from repro.afsim.figure6 import run_panel
    from repro.afsim.plot import render_ascii_panel

    series = run_panel("c", "read", calls=20, block_sizes=(512,))
    text = render_ascii_panel(series, "c", "read")
    assert "512" in text
