"""Robustness of the reproduced claims to cost recalibration, and
CPU-attribution checks on the measured workloads."""

import pytest

from repro.afsim.figure6 import check_claims, run_panel
from repro.afsim.workload import measure_point
from repro.ntos.costs import CostModel


class TestModernCostModel:
    """The paper's relative claims must survive 2020s hardware."""

    @pytest.fixture(scope="class")
    def modern_panels(self):
        costs = CostModel.modern()
        return {
            (panel, op): run_panel(panel, op, calls=120, costs=costs)
            for panel in ("a", "c")
            for op in ("read", "write")
        }

    def test_read_ordering_survives(self, modern_panels):
        """Read latency ordering is structural: it holds at any scale."""
        for (panel, op), series in modern_panels.items():
            if op != "read":
                continue
            for block in (8, 512, 2048):
                assert series["process"][block].per_op_us \
                    > series["thread"][block].per_op_us \
                    > series["dll"][block].per_op_us, (panel, op, block)

    def test_writes_still_cost_more_through_heavier_transports(self,
                                                               modern_panels):
        """For writes the regime can reorder process vs thread (big
        modern pipe buffers absorb pipelined writes), but both must
        stay above the DLL strategy — the abstraction-cost claim."""
        for (panel, op), series in modern_panels.items():
            if op != "write":
                continue
            for block in (8, 512, 2048):
                dll = series["dll"][block].per_op_us
                assert series["process"][block].per_op_us > dll
                assert series["thread"][block].per_op_us > dll

    def test_dll_still_matches_baseline(self, modern_panels):
        for (panel, op), series in modern_panels.items():
            for block in (8, 2048):
                dll = series["dll"][block].per_op_us
                base = series["baseline"][block].per_op_us
                assert abs(dll - base) <= 1.0 + 0.15 * base

    def test_absolute_scale_shrinks_dramatically(self, modern_panels):
        nt = run_panel("a", "read", calls=120)
        modern = modern_panels[("a", "read")]
        assert modern["process"][2048].per_op_us \
            < nt["process"][2048].per_op_us / 5

    def test_full_claim_check_on_memory_panel(self):
        series = run_panel("c", "read", calls=120,
                           costs=CostModel.modern())
        assert check_claims(series, "c", "read") == []


class TestCpuAttribution:
    """Per-process CPU accounting explains *where* the overhead lives."""

    def test_process_strategy_splits_cpu_across_processes(self):
        result = measure_point("process-control", "memory", "read", 512,
                               calls=50)
        assert result.cpu_by_process.get("app", 0) > 0
        assert result.cpu_by_process.get("af-sentinel", 0) > 0

    def test_dll_strategy_runs_entirely_in_app(self):
        result = measure_point("dll", "memory", "read", 512, calls=50)
        assert set(result.cpu_by_process) == {"app"}

    def test_thread_strategy_single_process_two_threads(self):
        result = measure_point("thread", "memory", "read", 512, calls=50)
        # sentinel thread lives inside the app process
        assert set(result.cpu_by_process) == {"app"}

    def test_sentinel_cpu_tracks_block_size(self):
        small = measure_point("process-control", "memory", "read", 8,
                              calls=50)
        large = measure_point("process-control", "memory", "read", 2048,
                              calls=50)
        assert large.cpu_by_process["af-sentinel"] \
            > small.cpu_by_process["af-sentinel"]

    def test_read_blocking_vs_write_pipelining_in_cpu_terms(self):
        """Reads and writes cost the sentinel similar CPU; the latency
        difference the paper reports is *waiting*, not work."""
        read = measure_point("process-control", "memory", "read", 512,
                             calls=50)
        write = measure_point("process-control", "memory", "write", 512,
                              calls=50)
        read_cpu = sum(read.cpu_by_process.values())
        write_cpu = sum(write.cpu_by_process.values())
        assert write_cpu == pytest.approx(read_cpu, rel=0.5)
        assert read.per_op_us > write.per_op_us


class TestOpenCost:
    """Supplementary lifecycle experiment: what does open itself cost?"""

    def test_hierarchy_process_thread_dll(self):
        from repro.afsim.workload import measure_open_cost

        process = measure_open_cost("process-control")
        thread = measure_open_cost("thread")
        dll = measure_open_cost("dll")
        # spawning an address space >> spawning a thread >> nothing
        assert process > 10 * thread > 10 * dll

    def test_process_open_dominated_by_createprocess(self):
        from repro.afsim.workload import measure_open_cost
        from repro.ntos.costs import CostModel

        baseline = measure_open_cost("process-control")
        pricier = measure_open_cost(
            "process-control",
            costs=CostModel().tuned(process_create_us=50_000.0))
        assert pricier > baseline + 40_000

    def test_baseline_strategy_rejected(self):
        from repro.afsim.workload import measure_open_cost
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            measure_open_cost("baseline")

    def test_open_cost_deterministic(self):
        from repro.afsim.workload import measure_open_cost

        assert measure_open_cost("thread") == measure_open_cost("thread")
