"""Tests for the supplementary sentinel-work and concurrency experiments."""

import pytest

from repro.afsim.scaling import (
    measure_concurrent,
    measure_with_sentinel_work,
)
from repro.errors import SimulationError


class TestSentinelWorkAdditivity:
    """§6: 'the eventual cost ... is determined only by the functionality
    that they implement, not by the cost of interacting with them.'"""

    @pytest.mark.parametrize("strategy", ["process-control", "thread", "dll"])
    def test_injected_work_is_exactly_additive(self, strategy):
        baseline = measure_with_sentinel_work(strategy, work_us=0.0)
        loaded = measure_with_sentinel_work(strategy, work_us=200.0)
        assert loaded - baseline == pytest.approx(200.0, abs=2.0)

    def test_framework_overhead_independent_of_work(self):
        """The strategy gap (framework cost) stays constant as the
        sentinel's functionality gets heavier."""
        gaps = []
        for work in (0.0, 100.0, 400.0):
            process = measure_with_sentinel_work("process-control", work)
            dll = measure_with_sentinel_work("dll", work)
            gaps.append(process - dll)
        assert max(gaps) - min(gaps) < 2.0

    def test_heavy_sentinel_dwarfs_transport(self):
        """With enough sentinel work, strategy choice stops mattering —
        the paper's argument for why the convenience trade is usually
        worth it."""
        process = measure_with_sentinel_work("process-control", 5000.0)
        dll = measure_with_sentinel_work("dll", 5000.0)
        assert (process - dll) / dll < 0.03


class TestConcurrencyScaling:
    def test_throughput_hierarchy_preserved_under_load(self):
        results = {strategy: measure_concurrent(strategy, clients=8,
                                                calls=40)
                   for strategy in ("process-control", "thread", "dll")}
        assert results["dll"].throughput_ops_per_ms \
            > results["thread"].throughput_ops_per_ms \
            > results["process-control"].throughput_ops_per_ms

    def test_single_cpu_total_time_scales_with_clients(self):
        one = measure_concurrent("thread", clients=1, calls=50)
        four = measure_concurrent("thread", clients=4, calls=50)
        # one CPU: 4x the work takes ~4x the time (plus scheduling)
        assert four.total_us > 3.5 * one.total_us

    def test_aggregate_throughput_roughly_flat_on_cpu_bound_path(self):
        """More clients don't create CPU out of thin air."""
        few = measure_concurrent("dll", clients=2, calls=50)
        many = measure_concurrent("dll", clients=8, calls=50)
        ratio = many.throughput_ops_per_ms / few.throughput_ops_per_ms
        assert 0.6 < ratio < 1.4

    def test_network_path_overlaps_waits_across_clients(self):
        """On the network path, client B computes while client A waits
        on the wire — aggregate throughput rises with concurrency."""
        one = measure_concurrent("dll", clients=1, calls=30, path="network")
        four = measure_concurrent("dll", clients=4, calls=30, path="network")
        assert four.throughput_ops_per_ms > 1.5 * one.throughput_ops_per_ms

    def test_deterministic(self):
        a = measure_concurrent("thread", clients=3, calls=20)
        b = measure_concurrent("thread", clients=3, calls=20)
        assert a == b

    def test_zero_clients_rejected(self):
        with pytest.raises(SimulationError):
            measure_concurrent("dll", clients=0)
