"""Tests for kernel objects, pipes, shared memory, fs, NIC, IAT."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.ntos import (
    CostModel,
    ImportAddressTable,
    KEvent,
    KMutex,
    KPipe,
    KSemaphore,
    Kernel,
    NTFileSystem,
    NetDevice,
    RemoteHost,
    SharedSection,
    Win32,
)
from repro.ntos.iat import inject_dll, mediate


@pytest.fixture
def kernel():
    return Kernel()


class TestEvents:
    def test_set_then_wait_does_not_block(self, kernel):
        event = KEvent(kernel)
        trace = []

        def main():
            event.set()
            event.wait()
            trace.append("through")

        kernel.run_program(main)
        assert trace == ["through"]

    def test_auto_reset_consumes_signal(self, kernel):
        event = KEvent(kernel)

        def main():
            event.set()
            event.wait()
            assert not event.signaled

        kernel.run_program(main)

    def test_wait_then_set_wakes(self, kernel):
        event = KEvent(kernel)
        trace = []
        process = kernel.create_process("p")

        def waiter():
            event.wait()
            trace.append("woken")

        def setter():
            trace.append("setting")
            event.set()

        kernel.create_thread(process, waiter)
        kernel.create_thread(process, setter)
        kernel.run()
        assert trace == ["setting", "woken"]

    def test_manual_reset_wakes_all(self, kernel):
        event = KEvent(kernel, manual_reset=True)
        woken = []
        process = kernel.create_process("p")
        for i in range(3):
            kernel.create_thread(process,
                                 lambda i=i: (event.wait(), woken.append(i)))
        kernel.create_thread(process, event.set)
        kernel.run()
        assert sorted(woken) == [0, 1, 2]

    def test_signal_charges_time(self):
        kernel = Kernel(CostModel(syscall_us=0.0, event_signal_us=9.0))
        event = KEvent(kernel)
        kernel.run_program(event.set)
        assert kernel.now == 9.0


class TestSemaphoreAndMutex:
    def test_semaphore_counts(self, kernel):
        sem = KSemaphore(kernel, initial=2)

        def main():
            sem.acquire()
            sem.acquire()
            sem.release()
            sem.acquire()

        kernel.run_program(main)

    def test_semaphore_blocks_at_zero(self, kernel):
        sem = KSemaphore(kernel)
        trace = []
        process = kernel.create_process("p")

        def taker():
            sem.acquire()
            trace.append("acquired")

        kernel.create_thread(process, taker)
        kernel.create_thread(process, lambda: (trace.append("releasing"),
                                               sem.release()))
        kernel.run()
        assert trace == ["releasing", "acquired"]

    def test_negative_initial_rejected(self, kernel):
        with pytest.raises(SimulationError):
            KSemaphore(kernel, initial=-1)

    def test_mutex_exclusion_and_handover(self, kernel):
        mutex = KMutex(kernel)
        trace = []
        process = kernel.create_process("p")

        def worker(tag):
            with mutex:
                trace.append(f"{tag}-in")
                kernel.yield_cpu()
                trace.append(f"{tag}-out")

        kernel.create_thread(process, lambda: worker("a"))
        kernel.create_thread(process, lambda: worker("b"))
        kernel.run()
        assert trace == ["a-in", "a-out", "b-in", "b-out"]

    def test_mutex_foreign_release_rejected(self, kernel):
        mutex = KMutex(kernel)
        process = kernel.create_process("p")
        errors = []

        def owner():
            mutex.acquire()
            kernel.yield_cpu()
            mutex.release()

        def intruder():
            try:
                mutex.release()
            except SimulationError as exc:
                errors.append(exc)

        kernel.create_thread(process, owner)
        kernel.create_thread(process, intruder)
        kernel.run()
        assert len(errors) == 1

    def test_mutex_recursive_acquire_rejected(self, kernel):
        mutex = KMutex(kernel)

        def main():
            mutex.acquire()
            mutex.acquire()

        with pytest.raises(SimulationError):
            kernel.run_program(main)


class TestPipes:
    def test_write_read_roundtrip(self, kernel):
        pipe = KPipe(kernel)
        out = []

        def main():
            pipe.write(b"hello pipe")
            out.append(pipe.read(10))

        kernel.run_program(main)
        assert out == [b"hello pipe"]

    def test_read_blocks_until_write(self, kernel):
        pipe = KPipe(kernel)
        trace = []
        process = kernel.create_process("p")

        def reader():
            trace.append(("got", pipe.read(5)))

        def writer():
            trace.append(("writing",))
            pipe.write(b"datum")

        kernel.create_thread(process, reader)
        kernel.create_thread(process, writer)
        kernel.run()
        assert trace == [("writing",), ("got", b"datum")]

    def test_bounded_capacity_blocks_writer(self, kernel):
        pipe = KPipe(kernel, capacity=8)
        trace = []
        process = kernel.create_process("p")

        def writer():
            pipe.write(b"x" * 20)  # must block twice
            trace.append("write-done")
            pipe.close_write()

        def reader():
            while True:
                chunk = pipe.read(8)
                if not chunk:
                    return
                trace.append(len(chunk))

        kernel.create_thread(process, writer)
        kernel.create_thread(process, reader)
        kernel.run()
        assert trace[-1] == "write-done" or "write-done" in trace
        assert sum(x for x in trace if isinstance(x, int)) == 20

    def test_eof_after_close(self, kernel):
        pipe = KPipe(kernel)

        def main():
            pipe.write(b"tail")
            pipe.close_write()
            assert pipe.read(10) == b"tail"
            assert pipe.read(10) == b""

        kernel.run_program(main)

    def test_write_to_closed_read_end_fails(self, kernel):
        pipe = KPipe(kernel)

        def main():
            pipe.close_read()
            pipe.write(b"x")

        with pytest.raises(SimulationError):
            kernel.run_program(main)

    def test_read_exact(self, kernel):
        pipe = KPipe(kernel)
        out = []

        def main():
            pipe.write(b"abcdef")
            out.append(pipe.read_exact(4))

        kernel.run_program(main)
        assert out == [b"abcd"]

    def test_read_exact_eof_fails(self, kernel):
        pipe = KPipe(kernel)

        def main():
            pipe.write(b"ab")
            pipe.close_write()
            pipe.read_exact(5)

        with pytest.raises(SimulationError):
            kernel.run_program(main)

    def test_per_byte_cost_scales(self):
        def run(n):
            kernel = Kernel(CostModel(syscall_us=0, pipe_op_us=0,
                                      kernel_copy_us_per_byte=0.01))
            pipe = KPipe(kernel)

            def main():
                pipe.write(b"x" * n)
                pipe.read(n)

            kernel.run_program(main)
            return kernel.now

        assert run(2000) == pytest.approx(2 * run(1000))


class TestSharedMemory:
    def test_copy_roundtrip(self, kernel):
        section = SharedSection(kernel, 64)
        out = []

        def main():
            section.copy_in(b"shared bytes")
            out.append(section.copy_out(12))

        kernel.run_program(main)
        assert out == [b"shared bytes"]

    def test_single_copy_cheaper_than_pipe(self):
        costs = CostModel()
        k1 = Kernel(costs)
        section = SharedSection(k1, 4096)
        k1.run_program(lambda: (section.copy_in(b"x" * 2048),
                                section.copy_out(2048)))
        shared_cost = k1.now

        k2 = Kernel(costs)
        pipe = KPipe(k2)
        k2.run_program(lambda: (pipe.write(b"x" * 2048), pipe.read(2048)))
        pipe_cost = k2.now
        assert shared_cost < pipe_cost

    def test_bounds_checked(self, kernel):
        section = SharedSection(kernel, 8)
        with pytest.raises(SimulationError):
            kernel.run_program(lambda: section.copy_in(b"x" * 9))

    def test_bad_size_rejected(self, kernel):
        with pytest.raises(SimulationError):
            SharedSection(kernel, 0)


class TestFileSystem:
    def test_create_read_write(self, kernel):
        fs = NTFileSystem(kernel)
        fs.create("report.txt", b"0123456789")
        out = []

        def main():
            handle = fs.open("report.txt")
            out.append(handle.read(4))
            handle.write(b"XY")
            handle.seek(0)
            out.append(handle.read(10))

        kernel.run_program(main)
        assert out == [b"0123", b"0123XY6789"]

    def test_named_streams(self, kernel):
        fs = NTFileSystem(kernel)
        fs.create("thing.af", b"data part")
        fs.create("thing.af:active", b"sentinel.exe")
        assert fs.streams_of("thing.af") == ["", "active"]

        def main():
            assert fs.open("thing.af:active").read(100) == b"sentinel.exe"
            assert fs.open("thing.af").read(100) == b"data part"

        kernel.run_program(main)

    def test_copy_carries_streams(self, kernel):
        """Appendix A: streams make directory ops atomic over both parts."""
        fs = NTFileSystem(kernel)
        fs.create("orig.af", b"data")
        fs.create("orig.af:active", b"exe")

        def main():
            fs.copy("orig.af", "copy.af")

        kernel.run_program(main)
        assert fs.streams_of("copy.af") == ["", "active"]

    def test_rename_and_delete(self, kernel):
        fs = NTFileSystem(kernel)
        fs.create("a", b"1")

        def main():
            fs.rename("a", "b")
            assert fs.exists("b") and not fs.exists("a")
            fs.delete("b")

        kernel.run_program(main)
        assert fs.listdir() == []

    def test_missing_file_rejected(self, kernel):
        fs = NTFileSystem(kernel)
        with pytest.raises(SimulationError):
            kernel.run_program(lambda: fs.open("ghost"))

    def test_disk_costs_scale_with_size(self):
        def run(n):
            kernel = Kernel()
            fs = NTFileSystem(kernel)
            fs.create("f", b"z" * n)
            kernel.run_program(lambda: fs.open("f").read(n))
            return kernel.now

        assert run(4096) > run(64)


class TestNetwork:
    def test_rpc_blocks_for_round_trip(self, kernel):
        nic = NetDevice(kernel)
        host = RemoteHost(kernel, nic)
        kernel.run_program(lambda: host.request(100, 100))
        # at least two latencies
        assert kernel.now >= 2 * kernel.costs.net_latency_us

    def test_response_size_dominates_large_reads(self, kernel):
        def run(n):
            k = Kernel()
            host = RemoteHost(k, NetDevice(k))
            k.run_program(lambda: host.request(64, n))
            return k.now

        assert run(8192) > run(64) + 0.07 * 8000

    def test_one_way_send_is_cheap(self, kernel):
        nic = NetDevice(kernel)
        host = RemoteHost(kernel, nic)
        kernel.run_program(lambda: host.send(2048))
        # far less than a round trip
        assert kernel.now < kernel.costs.net_latency_us

    def test_queue_limit_throttles_sender(self):
        kernel = Kernel()
        nic = NetDevice(kernel, queue_limit=2)
        host = RemoteHost(kernel, nic)

        def main():
            for _ in range(20):
                host.send(10_000)

        kernel.run_program(main)
        # with only 2 queue slots the sender must wait for the wire:
        # 20 messages x 10KB at 0.08us/B = 16000us of wire time, and the
        # sender cannot finish much before ~90% of it has drained.
        assert kernel.now > 10_000

    def test_drain_waits_for_wire(self, kernel):
        nic = NetDevice(kernel)
        host = RemoteHost(kernel, nic)

        def main():
            host.send(5000)
            host.drain()
            assert nic._in_flight == 0

        kernel.run_program(main)
        assert kernel.now >= kernel.costs.net_latency_us


class TestIatAndWin32:
    def test_application_calls_go_through_iat(self, kernel):
        fs = NTFileSystem(kernel)
        fs.create("f", b"hello")
        process = kernel.create_process("app")
        win32 = Win32(kernel, process, fs)
        seen = []

        def spy_factory(original):
            def spy(path, create=False):
                seen.append(path)
                return original(path, create)
            return spy

        mediate(process.iat, "CreateFile", spy_factory)

        def main():
            handle = win32.CreateFile("f")
            assert win32.ReadFile(handle, 5) == b"hello"
            win32.CloseHandle(handle)

        kernel.create_thread(process, main)
        kernel.run()
        assert seen == ["f"]
        assert "CreateFile" in process.iat.mediated

    def test_inject_dll_rebinds_many(self, kernel):
        fs = NTFileSystem(kernel)
        process = kernel.create_process("app")
        Win32(kernel, process, fs)
        inject_dll(process.iat, {
            "ReadFile": lambda orig: lambda h, n: b"faked",
            "WriteFile": lambda orig: lambda h, d: 0,
        })
        assert process.iat.mediated == {"ReadFile", "WriteFile"}
        assert process.iat.call("ReadFile", 1, 2) == b"faked"

    def test_unresolved_import_rejected(self):
        table = ImportAddressTable()
        with pytest.raises(SimulationError):
            table.lookup("NoSuchApi")

    def test_win32_handles(self, kernel):
        fs = NTFileSystem(kernel)
        fs.create("f", b"x")
        process = kernel.create_process("app")
        win32 = Win32(kernel, process, fs)

        def main():
            handle = win32.CreateFile("f")
            assert handle % 4 == 0
            win32.CloseHandle(handle)
            try:
                win32.ReadFile(handle, 1)
            except SimulationError:
                return
            raise AssertionError("stale handle accepted")

        kernel.create_thread(process, main)
        kernel.run()

    def test_get_file_size_and_seek(self, kernel):
        fs = NTFileSystem(kernel)
        fs.create("f", b"0123456789")
        process = kernel.create_process("app")
        win32 = Win32(kernel, process, fs)

        def main():
            handle = win32.CreateFile("f")
            assert win32.GetFileSize(handle) == 10
            win32.SetFilePointer(handle, 6)
            assert win32.ReadFile(handle, 4) == b"6789"
            win32.CloseHandle(handle)

        kernel.create_thread(process, main)
        kernel.run()


class TestDuplicateHandle:
    def test_duplicate_shares_object(self, kernel):
        fs = NTFileSystem(kernel)
        fs.create("f", b"shared")
        process = kernel.create_process("app")
        win32 = Win32(kernel, process, fs)

        def main():
            original = win32.CreateFile("f")
            duplicate = win32.DuplicateHandle(original)
            assert duplicate != original
            win32.SetFilePointer(original, 3)
            # same open file object: position shared, like NT duplicates
            assert win32.ReadFile(duplicate, 3) == b"red"
            win32.CloseHandle(original)
            # the duplicate still works: object closes with LAST handle
            win32.SetFilePointer(duplicate, 0)
            assert win32.ReadFile(duplicate, 2) == b"sh"
            win32.CloseHandle(duplicate)

        kernel.create_thread(process, main)
        kernel.run()

    def test_object_closed_after_last_handle(self, kernel):
        fs = NTFileSystem(kernel)
        fs.create("f", b"x")
        process = kernel.create_process("app")
        win32 = Win32(kernel, process, fs)
        observed = {}

        def main():
            original = win32.CreateFile("f")
            duplicate = win32.DuplicateHandle(original)
            stream = win32.handle_object(original)
            win32.CloseHandle(original)
            observed["after_first"] = stream.closed
            win32.CloseHandle(duplicate)
            observed["after_last"] = stream.closed

        kernel.create_thread(process, main)
        kernel.run()
        assert observed == {"after_first": False, "after_last": True}
