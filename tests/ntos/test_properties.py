"""Property-based tests on the simulated kernel's invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ntos import CostModel, KEvent, KPipe, Kernel, SharedSection


# hypothesis op vocabularies --------------------------------------------------

pipe_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.binary(min_size=1, max_size=300)),
        st.tuples(st.just("read"), st.integers(1, 400)),
    ),
    max_size=25,
)


class TestPipeFifoProperty:
    @settings(max_examples=50, deadline=None)
    @given(chunks=st.lists(st.binary(min_size=1, max_size=200), max_size=15),
           capacity=st.sampled_from([16, 64, 4096]))
    def test_bytes_arrive_in_order_and_complete(self, chunks, capacity):
        """Whatever the chunking and capacity, the reader sees exactly
        the concatenation of what the writer sent."""
        kernel = Kernel()
        pipe = KPipe(kernel, capacity=capacity)
        received = []
        process = kernel.create_process("p")

        def writer():
            for chunk in chunks:
                pipe.write(chunk)
            pipe.close_write()

        def reader():
            while True:
                piece = pipe.read(37)
                if not piece:
                    return
                received.append(piece)

        kernel.create_thread(process, writer)
        kernel.create_thread(process, reader)
        kernel.run()
        assert b"".join(received) == b"".join(chunks)

    @settings(max_examples=40, deadline=None)
    @given(chunks=st.lists(st.binary(min_size=1, max_size=100),
                           min_size=1, max_size=10))
    def test_charged_time_proportional_to_volume(self, chunks):
        costs = CostModel(syscall_us=0.0, pipe_op_us=0.0,
                          kernel_copy_us_per_byte=0.01,
                          thread_switch_us=0.0, process_switch_us=0.0)
        kernel = Kernel(costs)
        pipe = KPipe(kernel)
        process = kernel.create_process("p")
        total = sum(len(c) for c in chunks)

        def main():
            for chunk in chunks:
                pipe.write(chunk)
            pipe.close_write()
            while pipe.read(4096):
                pass

        kernel.create_thread(process, main)
        kernel.run()
        # one charge on write + one on read, both at 0.01 us/B
        assert kernel.now == pytest.approx(2 * total * 0.01)


class TestSchedulerDeterminismProperty:
    @settings(max_examples=25, deadline=None)
    @given(plan=st.lists(st.tuples(st.integers(0, 3),
                                   st.sampled_from(["charge", "yield",
                                                    "sleep", "signal",
                                                    "wait"])),
                         max_size=30))
    def test_any_program_runs_identically_twice(self, plan):
        """Arbitrary interleavings of primitives are reproducible."""

        def run_once():
            kernel = Kernel()
            process = kernel.create_process("p")
            events = [KEvent(kernel, manual_reset=True) for _ in range(4)]
            trace = []

            def worker(index):
                for target, action in plan:
                    if target % 4 != index % 4:
                        continue
                    trace.append((index, action, round(kernel.now, 3)))
                    if action == "charge":
                        kernel.charge(1.5)
                    elif action == "yield":
                        kernel.yield_cpu()
                    elif action == "sleep":
                        kernel.sleep(3.0)
                    elif action == "signal":
                        events[index % 4].set()
                    elif action == "wait":
                        # manual-reset + prior signal check avoids deadlock
                        if events[(index + 1) % 4].signaled:
                            events[(index + 1) % 4].wait()
                trace.append((index, "done", round(kernel.now, 3)))

            for i in range(4):
                kernel.create_thread(process, lambda i=i: worker(i))
            kernel.run()
            return trace, kernel.now

        first = run_once()
        second = run_once()
        assert first == second


class TestSharedSectionProperty:
    @settings(max_examples=50, deadline=None)
    @given(payload=st.binary(max_size=512), offset=st.integers(0, 128))
    def test_copy_roundtrip(self, payload, offset):
        kernel = Kernel()
        section = SharedSection(kernel, 1024)
        out = {}

        def main():
            section.copy_in(payload, offset)
            out["data"] = section.copy_out(len(payload), offset)

        kernel.run_program(main)
        assert out["data"] == payload

    @settings(max_examples=30, deadline=None)
    @given(size=st.integers(1, 4096))
    def test_charge_scales_linearly(self, size):
        costs = CostModel(memcpy_us_per_byte=0.01)
        kernel = Kernel(costs)
        section = SharedSection(kernel, 8192)
        kernel.run_program(lambda: section.copy_in(b"x" * size))
        assert kernel.now == pytest.approx(size * 0.01)


class TestClockMonotonicityProperty:
    @settings(max_examples=30, deadline=None)
    @given(durations=st.lists(st.floats(0.0, 50.0), max_size=12))
    def test_sleeps_never_move_clock_backwards(self, durations):
        kernel = Kernel()
        samples = []
        process = kernel.create_process("p")

        def main():
            for duration in durations:
                samples.append(kernel.now)
                kernel.sleep(duration)
            samples.append(kernel.now)

        kernel.create_thread(process, main)
        kernel.run()
        assert samples == sorted(samples)
        assert kernel.now >= sum(durations) - 1e-9
