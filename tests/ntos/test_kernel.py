"""Tests for the virtual-time kernel's scheduling invariants."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.ntos import CostModel, Kernel


@pytest.fixture
def kernel():
    return Kernel()


class TestBasics:
    def test_run_single_thread(self, kernel):
        trace = []
        kernel.run_program(lambda: trace.append("ran"))
        assert trace == ["ran"]

    def test_empty_kernel_runs_to_zero(self, kernel):
        assert kernel.run() == 0.0

    def test_charge_advances_clock(self, kernel):
        kernel.run_program(lambda: kernel.charge(125.5))
        assert kernel.now == 125.5

    def test_charge_negative_rejected(self, kernel):
        with pytest.raises(SimulationError):
            kernel.run_program(lambda: kernel.charge(-1))

    def test_syscall_charges_model_cost(self):
        kernel = Kernel(CostModel(syscall_us=7.0))
        kernel.run_program(lambda: kernel.syscall())
        assert kernel.now == 7.0
        assert kernel.syscalls == 1

    def test_cannot_run_twice(self, kernel):
        kernel.run_program(lambda: None)
        with pytest.raises(SimulationError):
            kernel.run()

    def test_exception_in_thread_propagates_to_host(self, kernel):
        def boom():
            raise RuntimeError("sim thread exploded")

        process = kernel.create_process("p")
        kernel.create_thread(process, boom)
        with pytest.raises(RuntimeError, match="exploded"):
            kernel.run()


class TestScheduling:
    def test_threads_run_fifo(self, kernel):
        trace = []
        process = kernel.create_process("p")
        for tag in ("a", "b", "c"):
            kernel.create_thread(process, lambda t=tag: trace.append(t))
        kernel.run()
        assert trace == ["a", "b", "c"]

    def test_yield_interleaves(self, kernel):
        trace = []
        process = kernel.create_process("p")

        def worker(tag):
            for i in range(3):
                trace.append(f"{tag}{i}")
                kernel.yield_cpu()

        kernel.create_thread(process, lambda: worker("a"))
        kernel.create_thread(process, lambda: worker("b"))
        kernel.run()
        assert trace == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_single_runnable_no_parallelism(self, kernel):
        """At most one simulated thread executes between handoffs."""
        in_critical = [0]
        violations = []
        process = kernel.create_process("p")

        def worker():
            for _ in range(50):
                in_critical[0] += 1
                if in_critical[0] > 1:
                    violations.append(True)
                # no handoff here: nothing else may run
                in_critical[0] -= 1
                kernel.yield_cpu()

        for _ in range(4):
            kernel.create_thread(process, worker)
        kernel.run()
        assert not violations

    def test_context_switch_costs_differ_by_process(self):
        costs = CostModel(thread_switch_us=5.0, process_switch_us=50.0)
        # same-process pair
        k1 = Kernel(costs)
        p1 = k1.create_process("p")
        k1.create_thread(p1, k1.yield_cpu)
        k1.create_thread(p1, lambda: None)
        same = k1.run()
        # cross-process pair
        k2 = Kernel(costs)
        k2.create_thread(k2.create_process("a"), k2.yield_cpu)
        k2.create_thread(k2.create_process("b"), lambda: None)
        cross = k2.run()
        assert cross > same
        assert k2.process_switches >= 1

    def test_thread_created_mid_run_is_scheduled(self, kernel):
        trace = []
        process = kernel.create_process("p")

        def parent():
            trace.append("parent")
            kernel.create_thread(process, lambda: trace.append("child"))

        kernel.create_thread(process, parent)
        kernel.run()
        assert trace == ["parent", "child"]


class TestTimersAndSleep:
    def test_sleep_advances_clock(self, kernel):
        kernel.run_program(lambda: kernel.sleep(500.0))
        assert kernel.now >= 500.0

    def test_clock_jumps_when_all_blocked(self, kernel):
        marks = []
        process = kernel.create_process("p")

        def sleeper(duration):
            kernel.sleep(duration)
            marks.append((duration, kernel.now))

        kernel.create_thread(process, lambda: sleeper(100))
        kernel.create_thread(process, lambda: sleeper(50))
        kernel.run()
        # 50 finishes first despite being created second
        assert marks[0][0] == 50
        assert marks[0][1] >= 50
        assert marks[1][1] >= 100

    def test_timer_ordering_is_deterministic(self, kernel):
        fired = []
        process = kernel.create_process("p")

        def main():
            kernel.at(10.0, lambda: fired.append("x"))
            kernel.at(10.0, lambda: fired.append("y"))
            kernel.at(5.0, lambda: fired.append("z"))
            kernel.sleep(20.0)

        kernel.create_thread(process, main)
        kernel.run()
        assert fired == ["z", "x", "y"]

    def test_clock_monotonic_through_timers(self, kernel):
        seen = []
        process = kernel.create_process("p")

        def main():
            kernel.charge(7.0)
            seen.append(kernel.now)
            kernel.sleep(1.0)
            seen.append(kernel.now)
            kernel.sleep(0.0)
            seen.append(kernel.now)

        kernel.create_thread(process, main)
        kernel.run()
        assert seen == sorted(seen)


class TestDeadlock:
    def test_block_without_waker_is_deadlock(self, kernel):
        process = kernel.create_process("p")
        kernel.create_thread(process, lambda: kernel.block("nothing"))
        with pytest.raises(DeadlockError):
            kernel.run()

    def test_mutual_wait_is_deadlock(self, kernel):
        from repro.ntos import KEvent

        a_done = KEvent(kernel, name="a")
        b_done = KEvent(kernel, name="b")
        process = kernel.create_process("p")

        def thread_a():
            b_done.wait()
            a_done.set()

        def thread_b():
            a_done.wait()
            b_done.set()

        kernel.create_thread(process, thread_a)
        kernel.create_thread(process, thread_b)
        with pytest.raises(DeadlockError):
            kernel.run()

    def test_pending_timer_is_not_deadlock(self, kernel):
        kernel.run_program(lambda: kernel.sleep(10_000.0))
        assert kernel.now >= 10_000.0

    def test_wake_finished_thread_rejected(self, kernel):
        process = kernel.create_process("p")
        worker = kernel.create_thread(process, lambda: None)

        def main():
            kernel.yield_cpu()  # let worker finish
            kernel.wake(worker)

        # worker was created first so it runs first and finishes
        kernel.create_thread(process, main)
        with pytest.raises(SimulationError):
            kernel.run()


class TestDeterminism:
    @staticmethod
    def _workload(kernel):
        from repro.ntos import KPipe

        process_a = kernel.create_process("a")
        process_b = kernel.create_process("b")
        pipe = KPipe(kernel, capacity=128)

        def producer():
            for i in range(20):
                pipe.write(bytes([i]) * 50)
            pipe.close_write()

        def consumer():
            while pipe.read(64):
                kernel.charge(1.0)

        kernel.create_thread(process_a, producer)
        kernel.create_thread(process_b, consumer)
        return kernel.run()

    def test_identical_runs_identical_clocks(self):
        runs = [self._workload(Kernel()) for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]
        assert runs[0] > 0


class TestFairness:
    def test_round_robin_no_starvation(self):
        """Every yielding thread makes progress at a uniform rate."""
        kernel = Kernel()
        process = kernel.create_process("p")
        progress = {i: 0 for i in range(5)}
        order_violations = []

        def worker(index):
            for _ in range(20):
                progress[index] += 1
                counts = list(progress.values())
                if max(counts) - min(counts) > 1:
                    order_violations.append(dict(progress))
                kernel.yield_cpu()

        for i in range(5):
            kernel.create_thread(process, lambda i=i: worker(i))
        kernel.run()
        assert not order_violations
        assert all(count == 20 for count in progress.values())
