"""Tests for the kernel tracer."""

import pytest

from repro.ntos import KPipe, Kernel
from repro.ntos.trace import Tracer


def traced_pipe_run():
    kernel = Kernel()
    tracer = Tracer.attach(kernel)
    pipe = KPipe(kernel, capacity=64)
    process = kernel.create_process("p")

    def writer():
        pipe.write(b"x" * 200)  # forces blocking on the tiny pipe
        pipe.close_write()

    def reader():
        while pipe.read(64):
            pass

    kernel.create_thread(process, writer, "writer")
    kernel.create_thread(process, reader, "reader")
    kernel.run()
    return tracer


class TestTracer:
    def test_records_spawns_switches_exits(self):
        tracer = traced_pipe_run()
        assert tracer.count("spawn") == 2
        assert tracer.count("exit") == 2
        assert tracer.count("switch") >= 2

    def test_block_reasons_aggregated(self):
        tracer = traced_pipe_run()
        reasons = tracer.blocks_by_reason()
        assert "pipe-full" in reasons
        assert reasons["pipe-full"] >= 1

    def test_timestamps_monotone(self):
        tracer = traced_pipe_run()
        stamps = [event.at_us for event in tracer.events]
        assert stamps == sorted(stamps)

    def test_timeline_renders(self):
        tracer = traced_pipe_run()
        text = tracer.render_timeline(limit=10)
        assert "writer" in text
        assert "t (µs)" in text

    def test_bounded_recording(self):
        kernel = Kernel()
        tracer = Tracer.attach(kernel, max_events=5)
        process = kernel.create_process("p")

        def spinner():
            for _ in range(50):
                kernel.yield_cpu()

        kernel.create_thread(process, spinner, "a")
        kernel.create_thread(process, spinner, "b")
        kernel.run()
        assert len(tracer.events) == 5
        assert tracer.dropped > 0

    def test_detach_restores_kernel(self):
        kernel = Kernel()
        original_block = kernel.block
        tracer = Tracer.attach(kernel)
        assert kernel.block is not original_block
        tracer.detach()
        assert kernel.block == original_block

    def test_trace_explains_figure6_critical_path(self):
        """The §6 narrative: a process-strategy read context-switches
        into the sentinel process and back."""
        from repro.afsim.backings import MemoryBacking
        from repro.afsim.sessions import open_session

        kernel = Kernel()
        tracer = Tracer.attach(kernel)
        app = kernel.create_process("app")

        def main():
            session = open_session("process-control", kernel, app,
                                   MemoryBacking(kernel))
            session.read(512)
            session.close()

        kernel.create_thread(app, main, "app:main")
        kernel.run()
        switch_targets = [event.thread for event in tracer.events
                          if event.kind == "switch"]
        assert any("sentinel" in name for name in switch_targets)
        assert any("app" in name for name in switch_targets)
