"""Resource faults and their safety rails.

The contract under test is structural: every fault carries its own
in-process watchdog (it reverts within its bound even when nobody sends
the revert), caps and ceilings clamp requests rather than trusting
them, and the only signal path the chaos engine owns refuses pids that
no live sentinel host holds.
"""

import os
import time

import pytest

from repro.core import create_active, policy
from repro.core.resourcefaults import (
    FD_RESERVE,
    MEMORY_PRESSURE_CAP,
    RESOURCE_ACTIONS,
    ResourceFaultController,
    assert_sentinel_pid,
    charge_disk_write,
)
from repro.core.runner import SentinelHost
from repro.core.telemetry import TELEMETRY
from repro.errors import ChaosError, ChaosSafetyError, DiskFullError


def _counter(action):
    return TELEMETRY.metrics.counter(
        f"faults.injected.resource.{action}").value


class TestControllerBounds:
    """Every fault is clamped, watchdogged, and revertible."""

    def test_unknown_action_is_typed(self):
        with pytest.raises(ChaosError):
            ResourceFaultController().inject("chaos-monkey", {})

    def test_non_positive_duration_refused(self):
        with pytest.raises(ChaosSafetyError):
            ResourceFaultController().inject("cpu-hog", {"seconds": 0})

    def test_duration_clamped_to_policy_cap(self):
        controller = ResourceFaultController()
        info = controller.inject("cpu-hog", {"seconds": 9999, "threads": 1})
        try:
            assert info["seconds"] == policy.CHAOS_MAX_FAULT_S
        finally:
            controller.revert_all()

    def test_cpu_hog_auto_reverts_without_revert_call(self):
        # The injector never reverts — the fault's own watchdog must.
        # This is the "runner killed mid-injection" guarantee: the
        # watchdog lives in the faulted process, not the injecting one.
        controller = ResourceFaultController()
        controller.inject("cpu-hog", {"seconds": 0.2, "threads": 1})
        assert len(controller.active()) == 1
        deadline = time.monotonic() + 5.0
        while controller.active() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert controller.active() == []

    def test_memory_pressure_capped_and_released(self):
        controller = ResourceFaultController()
        info = controller.inject(
            "memory-pressure",
            {"seconds": 5.0, "bytes": MEMORY_PRESSURE_CAP * 10})
        assert info["bytes"] == MEMORY_PRESSURE_CAP
        assert controller.revert_all() == 1
        assert controller.active() == []

    def test_fd_exhaustion_leaves_the_reserve(self):
        import resource
        soft, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
        controller = ResourceFaultController()
        info = controller.inject("fd-exhaustion",
                                 {"seconds": 5.0, "count": 10 ** 9})
        try:
            assert info["count"] <= soft - FD_RESERVE
            # The reserve promise holds: this process can still open.
            r, w = os.pipe()
            os.close(r)
            os.close(w)
        finally:
            controller.revert_all()
        r, w = os.pipe()
        os.close(r)
        os.close(w)

    def test_every_action_counts_an_injection(self):
        controller = ResourceFaultController()
        before = {action: _counter(action) for action in RESOURCE_ACTIONS}
        try:
            for action in RESOURCE_ACTIONS:
                controller.inject(action, {"seconds": 5.0, "threads": 1,
                                           "bytes": 1024, "count": 2})
        finally:
            controller.revert_all()
        for action in RESOURCE_ACTIONS:
            assert _counter(action) == before[action] + 1

    def test_revert_by_id_is_exact(self):
        controller = ResourceFaultController()
        first = controller.inject("memory-pressure",
                                  {"seconds": 5.0, "bytes": 1024})
        second = controller.inject("memory-pressure",
                                   {"seconds": 5.0, "bytes": 1024})
        assert controller.revert(first["fault_id"]) is True
        assert controller.revert(first["fault_id"]) is False
        remaining = controller.active()
        assert [f["fault_id"] for f in remaining] == [second["fault_id"]]
        controller.revert_all()


class TestDiskFullQuota:
    """The ENOSPC quota: typed, bounded, and clear-on-revert."""

    def test_exhausted_quota_raises_enospc(self):
        import errno
        controller = ResourceFaultController()
        controller.inject("disk-full", {"seconds": 5.0, "bytes": 100})
        try:
            charge_disk_write(60)  # within quota: charged, no raise
            with pytest.raises(DiskFullError) as excinfo:
                charge_disk_write(60)  # 60 > 40 remaining
            assert excinfo.value.errno == errno.ENOSPC
            assert isinstance(excinfo.value, OSError)
        finally:
            controller.revert_all()
        charge_disk_write(10 ** 9)  # quota gone: unlimited again

    def test_quota_expires_on_its_own(self):
        controller = ResourceFaultController()
        controller.inject("disk-full", {"seconds": 0.15, "bytes": 0})
        with pytest.raises(DiskFullError):
            charge_disk_write(1)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                charge_disk_write(1)
                break
            except DiskFullError:
                time.sleep(0.02)
        else:
            pytest.fail("disk-full quota never expired")
        controller.revert_all()


class _FakeProc:
    def __init__(self, pid, alive=True):
        self.pid = pid
        self._alive = alive

    def poll(self):
        return None if self._alive else 0


class _FakeHost:
    def __init__(self, pid, alive=True):
        self.proc = _FakeProc(pid, alive)


class TestBlastRadiusGuard:
    """Only pids owned by live sentinel hosts may be signalled."""

    def test_refuses_foreign_pid(self):
        with pytest.raises(ChaosSafetyError):
            assert_sentinel_pid(os.getpid(), [_FakeHost(12345)])

    def test_refuses_dead_hosts_pid(self):
        with pytest.raises(ChaosSafetyError):
            assert_sentinel_pid(4242, [_FakeHost(4242, alive=False)])

    def test_refuses_with_no_hosts_at_all(self):
        with pytest.raises(ChaosSafetyError):
            assert_sentinel_pid(1, [])

    def test_accepts_live_sentinel_pid(self):
        assert_sentinel_pid(4242, [_FakeHost(4242)])  # no raise


class TestChaosControlOp:
    """The ``chaos`` op on channel 0 of a real sentinel host."""

    @pytest.fixture
    def host(self, tmp_path):
        path = str(tmp_path / "chaos.af")
        create_active(path, "repro.sentinels.null:NullFilterSentinel",
                      data=b"x" * 64)
        host = SentinelHost(path)
        yield host
        host.shutdown()

    def test_inject_status_revert_round_trip(self, host):
        info = host.inject_chaos("cpu-hog", {"seconds": 5.0, "threads": 1})
        assert info["fault_id"] >= 1
        assert info["seconds"] == 5.0
        status = host.inject_chaos("status")
        assert [f["action"] for f in status["active"]] == ["cpu-hog"]
        assert host.inject_chaos("revert-all")["reverted"] == 1
        assert host.inject_chaos("status")["active"] == []

    def test_parent_counter_tracks_delivery(self, host):
        before = _counter("memory-pressure")
        host.inject_chaos("memory-pressure", {"seconds": 5.0, "bytes": 4096})
        assert _counter("memory-pressure") == before + 1
        host.inject_chaos("revert-all")
        assert _counter("memory-pressure") == before + 1  # verbs don't count

    def test_unknown_action_round_trips_typed(self, host):
        with pytest.raises(ChaosError):
            host.inject_chaos("format-c-drive")
        assert host.alive  # a refused injection never harms the host

    def test_host_reverts_after_injector_abandons_it(self, host):
        # The parent injects and walks away; the *child's* watchdog must
        # clear the fault within its bound.
        host.inject_chaos("fd-exhaustion", {"seconds": 0.2, "count": 8})
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if host.inject_chaos("status")["active"] == []:
                return
            time.sleep(0.05)
        pytest.fail("host-side fault outlived its bound")
