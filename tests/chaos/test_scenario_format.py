"""The scenario format: loader, linter, and the dry-run safety rail."""

import json

import pytest

from repro.core import policy
from repro.core.scenario import (
    ScenarioRunner,
    lint_scenario,
    load_scenario,
    parse_scenario,
)
from repro.core.telemetry import TELEMETRY
from repro.errors import ScenarioError

GOOD = """
# a comment
name: sample
seed: 42
workload:
  kind: sequential-read
  bytes: 4096
timeline:
  - at: 0
    point: send
    action: kill
    params:
      after: 2
      times: 1
  - at: 0.5
    point: resource
    action: cpu-hog
    params:
      seconds: 0.2
invariants:
  - data-identical
  - no-hung-futures
  - recovers-within: 5.0
  - faults.injected.send.kill >= 1
"""


def _scenario(text=GOOD):
    return parse_scenario(load_scenario(text))


class TestLoader:
    """The dependency-free YAML subset (JSON accepted as-is)."""

    def test_round_trip_structure(self):
        doc = load_scenario(GOOD)
        assert doc["name"] == "sample"
        assert doc["seed"] == 42
        assert doc["workload"] == {"kind": "sequential-read", "bytes": 4096}
        assert doc["timeline"][0]["params"] == {"after": 2, "times": 1}
        assert doc["timeline"][1]["action"] == "cpu-hog"
        assert doc["invariants"][2] == {"recovers-within": 5.0}

    def test_scalars(self):
        doc = load_scenario("a: true\nb: false\nc: null\nd: 3\ne: 3.5\n"
                            "f: 'x: #y'\ng: plain\n")
        assert doc == {"a": True, "b": False, "c": None, "d": 3, "e": 3.5,
                       "f": "x: #y", "g": "plain"}

    def test_json_passthrough(self):
        doc = load_scenario(json.dumps(
            {"name": "j", "workload": {"kind": "swarm-read"}}))
        assert doc["name"] == "j"

    def test_rejects_tabs_and_bad_indent(self):
        with pytest.raises(ScenarioError):
            load_scenario("a:\n\tb: 1\n")
        with pytest.raises(ScenarioError):
            load_scenario("a: 1\n   stray\n")

    def test_rejects_empty_and_non_mapping(self):
        with pytest.raises(ScenarioError):
            load_scenario("   \n# only comments\n")
        with pytest.raises(ScenarioError):
            load_scenario("- 1\n- 2\n")

    def test_parse_requires_workload_kind(self):
        with pytest.raises(ScenarioError):
            parse_scenario({"name": "x", "workload": {}})
        with pytest.raises(ScenarioError):
            parse_scenario({"name": "x", "workload": {"kind": "swarm-read"},
                            "timeline": [{"at": 0}]})

    def test_parse_rejects_unknown_top_level_keys(self):
        with pytest.raises(ScenarioError):
            parse_scenario({"name": "x", "workload": {"kind": "swarm-read"},
                            "timelime": []})  # the typo is the point


class TestLinter:
    """The blast-radius gate the CLI can never relax."""

    def _lint_one(self, **entry):
        scenario = parse_scenario({
            "name": "l", "workload": {"kind": "swarm-read"},
            "timeline": [entry]})
        return lint_scenario(scenario)

    def test_clean_scenario_passes(self):
        assert lint_scenario(_scenario()) == []

    def test_unknown_point_and_action(self):
        assert self._lint_one(point="warp", action="drop")
        assert self._lint_one(point="send", action="partition")

    def test_negative_at_and_bad_target(self):
        assert self._lint_one(at=-1, point="send", action="drop")
        assert self._lint_one(point="send", action="drop", target="universe")

    def test_destructive_needs_bounds(self):
        problems = self._lint_one(point="send", action="kill",
                                  params={"times": None})
        assert any("bounded 'times'" in p for p in problems)
        problems = self._lint_one(point="send", action="kill",
                                  params={"p": 0.5})
        assert any("p == 1.0" in p for p in problems)
        # Non-destructive probabilistic rules are fine outside tests.
        assert self._lint_one(point="send", action="drop",
                              params={"p": 0.5, "times": None}) == []

    def test_allow_unbounded_is_the_test_escape_hatch(self):
        scenario = parse_scenario({
            "name": "l", "workload": {"kind": "swarm-read"},
            "timeline": [{"point": "send", "action": "kill",
                          "params": {"p": 0.5, "times": None}}]})
        assert lint_scenario(scenario)
        assert lint_scenario(scenario, allow_unbounded=True) == []

    def test_resource_duration_caps(self):
        problems = self._lint_one(
            point="resource", action="cpu-hog",
            params={"seconds": policy.CHAOS_MAX_FAULT_S + 1})
        assert any("CHAOS_MAX_FAULT_S" in p for p in problems)
        scenario = parse_scenario({
            "name": "l", "workload": {"kind": "swarm-read"},
            "timeline": [
                {"point": "resource", "action": "cpu-hog",
                 "params": {"seconds": policy.CHAOS_MAX_FAULT_S}}
                for _ in range(1 + int(policy.CHAOS_MAX_TOTAL_INJECTION_S
                                       / policy.CHAOS_MAX_FAULT_S))]})
        assert any("CHAOS_MAX_TOTAL_INJECTION_S" in p
                   for p in lint_scenario(scenario))

    def test_invariant_validation(self):
        scenario = parse_scenario({
            "name": "l", "workload": {"kind": "swarm-read"},
            "invariants": ["no-such-invariant",
                           {"recovers-within": -2},
                           "faults.injected.send.kill >= 1"]})
        problems = lint_scenario(scenario)
        assert len(problems) == 2  # the counter expression is fine

    def test_unknown_workload_kind(self):
        scenario = parse_scenario({"name": "l",
                                   "workload": {"kind": "defrag"}})
        assert any("unknown kind" in p for p in lint_scenario(scenario))


class TestDryRun:
    """Dry-run is structurally injection-free, not flag-guarded."""

    def test_zero_injections_and_zero_counter_movement(self):
        before = dict(TELEMETRY.metrics.snapshot()["global"])
        report = ScenarioRunner(_scenario(), dry_run=True).run()
        after = TELEMETRY.metrics.snapshot()["global"]
        assert report["dry_run"] is True
        assert report["passed"] is True
        assert report["injections_performed"] == 0
        moved = {k: v for k, v in after.items()
                 if k.startswith("faults.injected.")
                 and v != before.get(k, 0)}
        assert moved == {}
        # No hosts were spawned either — the workload was never built.
        assert after.get("hosts.spawned", 0) == before.get("hosts.spawned", 0)

    def test_dry_run_resolves_the_full_timeline(self):
        report = ScenarioRunner(_scenario(), dry_run=True).run()
        assert [e["point"] for e in report["plan"]] == ["send", "resource"]
        assert all(e["resolved_target"] == "all-session-hosts"
                   for e in report["plan"])

    def test_dry_run_surfaces_lint_problems(self):
        scenario = parse_scenario({
            "name": "l", "workload": {"kind": "defrag"}})
        report = ScenarioRunner(scenario, dry_run=True).run()
        assert report["passed"] is False
        assert report["lint"]

    def test_dry_run_fingerprint_is_deterministic(self):
        one = ScenarioRunner(_scenario(), dry_run=True).run()
        two = ScenarioRunner(_scenario(), dry_run=True).run()
        assert one["fingerprint"] == two["fingerprint"]

    def test_run_refuses_a_scenario_that_fails_lint(self):
        scenario = parse_scenario({
            "name": "l", "workload": {"kind": "swarm-read"},
            "timeline": [{"point": "send", "action": "kill",
                          "params": {"times": None}}]})
        with pytest.raises(ScenarioError):
            ScenarioRunner(scenario).run()
