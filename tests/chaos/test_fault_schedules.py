"""Chaos property suite: seeded fault schedules against the transport.

Every test here drives a real workload — remote active files served by a
real sentinel child over the framed channel — while a seeded
:class:`~repro.core.faults.FaultPlane` injects crashes, lost frames, and
partitions.  The properties are absolute:

* **no data corruption** — the application reads exactly the origin's
  bytes, and the origin ends up with exactly the application's writes;
* **no hung futures** — whatever fired, the transport finishes with
  nothing in flight;
* **determinism** — the same seed and the same workload fire the same
  faults (chaos runs are replayable regressions, not flakes).

The schedule space is explored by hypothesis; the process-spawning
tests keep ``max_examples`` small because each example costs real
child processes.  CI pins ``HYPOTHESIS_SEED`` via ``derandomize`` so
the smoke matrix is stable.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import create_active, open_active
from repro.core.faults import FaultPlane
from repro.net import Address, FileServer, Network

REMOTE = "repro.sentinels.remotefile:RemoteFileSentinel"
ORIGIN_ADDRESS = "files.test:7000"

#: Fixed content: position-dependent bytes so any misplaced block is
#: visible as corruption, not just as a length mismatch.
CONTENT = bytes((7 * i + (i >> 8)) % 256 for i in range(16 * 1024))


def _rig(dirname, *, content=CONTENT, **params):
    """One origin + one remote active file, no shared fixture state."""
    network = Network()
    server = network.bind(Address("files.test", 7000), FileServer())
    server.put_file("data/blob.bin", content)
    path = os.path.join(dirname, "blob.af")
    create_active(path, REMOTE,
                  params={"address": ORIGIN_ADDRESS, "path": "data/blob.bin",
                          **params},
                  meta={"data": "memory"})
    return network, server, path


def _read_all(stream, chunk=1024):
    out = bytearray()
    while True:
        piece = stream.read(chunk)
        if not piece:
            return bytes(out)
        out += piece


class TestScheduleDeterminism:
    """Same seed + same event sequence => same firings (pure, fast)."""

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           p=st.floats(0.05, 0.95),
           ops=st.lists(st.sampled_from(["read", "write", "stat"]),
                        min_size=1, max_size=64))
    def test_same_seed_same_firings(self, seed, p, ops):
        def run():
            plane = FaultPlane(seed)
            plane.drop_frame(p=p).fail_network(p=p / 2)
            for op in ops:
                plane.on_send({"cmd": op})
                plane.on_network("files.test:7000", op)
            return [(e.point, e.action, e.op) for e in plane.fired]

        assert run() == run()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           after=st.integers(0, 10),
           times=st.integers(1, 3))
    def test_after_and_times_bounds(self, seed, after, times):
        plane = FaultPlane(seed)
        plane.drop_frame(after=after, times=times)
        for _ in range(after + times + 20):
            plane.on_send({"cmd": "read"})
        fired = plane.summary().get("send:drop", 0)
        assert fired == times  # never early, never beyond the cap


class TestReadPathChaos:
    """Sequential reads under kills and lost frames stay byte-identical."""

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16),
           kill_after=st.integers(2, 12),
           drop_p=st.sampled_from([0.0, 0.1, 0.25]))
    def test_reads_survive_kills_and_drops(self, seed, kill_after, drop_p):
        with tempfile.TemporaryDirectory() as dirname:
            network, _, path = _rig(dirname, cache="memory",
                                    block_size=2048, retries=6,
                                    retry_seed=seed)
            plane = FaultPlane(seed)
            plane.kill_host(after=kill_after, times=1)
            if drop_p:
                plane.drop_frame(op="read", p=drop_p)
                plane.drop_frame(op="readv", p=drop_p)
            stream = open_active(path, "rb", strategy="process-control",
                                 network=network)
            plane.arm_host(stream.session.host)
            data = _read_all(stream)
            assert data == CONTENT  # no corruption, no shortfall
            # no hung futures: the surviving channel is fully drained
            assert stream.session.channel.counters.snapshot()["in_flight"] == 0
            stream.close()

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 2**16),
           cut_after=st.integers(1, 6),
           cut_seconds=st.sampled_from([0.1, 0.3]))
    def test_reads_survive_timed_partitions(self, seed, cut_after,
                                            cut_seconds):
        with tempfile.TemporaryDirectory() as dirname:
            network, _, path = _rig(dirname, cache="memory",
                                    block_size=2048, retries=8,
                                    retry_seed=seed)
            plane = FaultPlane(seed)
            plane.partition(cut_seconds, address=ORIGIN_ADDRESS,
                            after=cut_after, times=1)
            plane.arm_network(network)
            stream = open_active(path, "rb", strategy="process-control",
                                 network=network)
            data = _read_all(stream)
            stream.close()
            assert data == CONTENT
            assert plane.summary().get("network:partition", 0) == 1
            assert network.stats.partitions == 1


class TestWritePathChaos:
    """Writes under kills reach the origin intact: journal replay means
    acked bytes never vanish, idempotent pushes mean none duplicate."""

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16),
           kill_after=st.integers(3, 14),
           drop_p=st.sampled_from([0.0, 0.1]))
    def test_writes_survive_kills_and_drops(self, seed, kill_after, drop_p):
        with tempfile.TemporaryDirectory() as dirname:
            blank = bytes(8 * 1024)
            network, server, path = _rig(dirname, content=blank,
                                         cache="none", retries=6,
                                         retry_seed=seed)
            expected = bytearray(blank)
            stream = open_active(path, "r+b", strategy="process-control",
                                 network=network)
            plane = FaultPlane(seed)
            plane.kill_host(after=kill_after, times=1)
            if drop_p:
                plane.drop_frame(op="write", p=drop_p)
            plane.arm_host(stream.session.host)
            for i in range(16):
                offset = i * 512
                chunk = bytes(((seed + i + j) % 256
                               for j in range(128)))
                stream.seek(offset)
                stream.write(chunk)
                expected[offset:offset + 128] = chunk
            stream.flush()
            assert stream.session.channel.counters.snapshot()["in_flight"] == 0
            stream.close()
            assert server.get_file("data/blob.bin") == bytes(expected)


class TestAcceptanceScenario:
    """The issue's acceptance schedule: a host kill mid-read plus a 2 s
    partition, and the application never sees a single exception."""

    def test_kill_mid_read_plus_partition_is_invisible(self):
        with tempfile.TemporaryDirectory() as dirname:
            network, _, path = _rig(dirname, cache="memory",
                                    block_size=2048, retries=8,
                                    retry_seed=1234)
            plane = FaultPlane(seed=1234)
            plane.kill_host(after=3, times=1)
            plane.partition(2.0, address=ORIGIN_ADDRESS, after=5, times=1)
            plane.arm_network(network)
            stream = open_active(path, "rb", strategy="process-control",
                                 network=network)
            plane.arm_host(stream.session.host)
            data = _read_all(stream)
            stream.close()
            assert data == CONTENT  # byte-identical, zero exceptions
            summary = plane.summary()
            assert summary.get("send:kill", 0) == 1  # the crash happened
            assert summary.get("network:partition", 0) == 1  # the cut too
            assert network.stats.partition_drops >= 1
            assert network.stats.heals >= 1
