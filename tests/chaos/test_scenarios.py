"""The scenario corpus: every bundled scenario passes, deterministically.

One parametrized test drives every file under ``scenarios/`` — real
sentinel children, real injections — and asserts the PR 3 invariants
the scenarios themselves declare (byte-identical data, no hung
futures), then replays the same seed and requires an identical report
fingerprint.  ``REPRO_CHAOS_SEED`` (set by the CI soak matrix)
overrides the seed baked into each file.
"""

import glob
import os

import pytest

from repro.core.scenario import ScenarioRunner, lint_scenario, \
    load_scenario_file, render_report

SCENARIO_DIR = os.path.join(os.path.dirname(__file__), "scenarios")
SCENARIO_FILES = sorted(glob.glob(os.path.join(SCENARIO_DIR, "*.yaml")))


def _seed_override():
    raw = os.environ.get("REPRO_CHAOS_SEED")
    return int(raw) if raw else None


def test_corpus_is_shipped():
    assert len(SCENARIO_FILES) >= 5, "the scenario corpus went missing"


@pytest.mark.parametrize(
    "path", SCENARIO_FILES,
    ids=[os.path.splitext(os.path.basename(p))[0] for p in SCENARIO_FILES])
class TestScenarioCorpus:

    def test_lints_clean(self, path):
        assert lint_scenario(load_scenario_file(path)) == []

    def test_passes_and_replays_deterministically(self, path):
        scenario = load_scenario_file(path)
        seed = _seed_override()
        first = ScenarioRunner(scenario, seed=seed).run()
        assert first["passed"], "\n" + render_report(first)
        # Same seed, same fingerprint: the resolved plan and every
        # invariant verdict replay identically (wall-clock noise lives
        # under report["timing"], outside the fingerprint on purpose).
        second = ScenarioRunner(scenario, seed=seed).run()
        assert second["passed"], "\n" + render_report(second)
        assert first["fingerprint"] == second["fingerprint"]
