"""Engine tests: flattening, bundle I/O, the report schema contract."""

import json
import os

import pytest

from repro.core.telemetry import BUNDLE_SCHEMA
from repro.doctor import engine
from repro.doctor.engine import (
    DOCTOR_SCHEMA,
    Analyzer,
    Evidence,
    Finding,
    build_analyzers,
    flatten_scopes,
    flatten_snapshot,
    known_metric,
    render_report,
    run_doctor,
)
from repro.errors import DoctorError

from tests.doctor.conftest import make_evidence, make_snapshot


class TestFlatten:
    def test_registry_metrics_pass_through(self):
        flat = flatten_snapshot(make_snapshot({"shm.bytes": 42,
                                               "plane.explore": 3}))
        assert flat["shm.bytes"] == 42
        assert flat["plane.explore"] == 3

    def test_cache_fields_sum_except_watermarks(self):
        snap = make_snapshot(cache={
            "a": {"hits": 2, "misses": 1, "window": 4,
                  "dirty_high_water": 10},
            "b": {"hits": 3, "misses": 0, "window": 8,
                  "dirty_high_water": 6},
        })
        flat = flatten_snapshot(snap)
        assert flat["cache.hits"] == 5
        assert flat["cache.misses"] == 1
        assert flat["cache.window"] == 8          # max, not sum
        assert flat["cache.dirty_high_water"] == 10

    def test_metrics_global_overlays_section_aggregates(self):
        # plane.selected.shm exists both as a section field and as a
        # registry counter; the registry (authoritative) must win so
        # the value is never double-counted.
        snap = make_snapshot({"plane.selected.shm": 7},
                             plane={"host:a.af#1": {"plane.selected.shm": 7}})
        assert flatten_snapshot(snap)["plane.selected.shm"] == 7

    def test_histograms_gain_percentiles(self):
        hist = {"count": 4, "sum": 1.0,
                "buckets": {"le_0.001": 2, "le_0.1": 1, "le_inf": 1}}
        flat = flatten_snapshot(make_snapshot({"host.queue_wait_s": hist}))
        assert flat["host.queue_wait_s.count"] == 4
        assert flat["host.queue_wait_s.p50"] == 0.001
        assert flat["host.queue_wait_s.p95"] > 0.001

    def test_ping_overlays_host_gauges(self):
        snap = make_snapshot(host={"af-loop#1": {"host.inflight": 5,
                                                 "host.rejects": 0}})
        ping = {"host": {"host.inflight": 1, "host.rejects": 2},
                "lat": {"queue_wait_p95_us": 900.0},
                "sessions": 3, "threads": 2}
        flat = flatten_snapshot(snap, ping=ping)
        assert flat["host.inflight"] == 1       # live beats section
        assert flat["host.rejects"] == 2
        assert flat["host.lat.queue_wait_p95_us"] == 900.0
        assert flat["host.sessions"] == 3

    def test_faults_and_transport_and_bookkeeping(self):
        snap = make_snapshot(
            faults={"plane#1": {"kill-host": 2}},
            transport={"totals": {"requests_sent": 9,
                                  "requests_failed": 1}},
            spans={"tracing": True, "buffered": 5, "dropped": 3},
            close_errors={"count": 2, "recent": []},
        )
        flat = flatten_snapshot(snap)
        assert flat["faults.fired.kill-host"] == 2
        assert flat["transport.requests_sent"] == 9
        assert flat["spans.dropped"] == 3
        assert flat["close_errors.count"] == 2

    def test_scoped_view_merges_metrics_and_file_stats(self):
        snap = make_snapshot(
            scopes={"a.af": {"host.respawns": 4}},
            files={"a.af#1": {"reads": 3, "bytes_read": 300},
                   "a.af#2": {"reads": 1, "bytes_read": 100}},
        )
        scoped = flatten_scopes(snap)
        assert scoped["a.af"]["host.respawns"] == 4
        assert scoped["a.af"]["file.reads"] == 4   # opens of one path sum
        assert scoped["a.af"]["file.bytes_read"] == 400

    def test_known_metric_catalog_covers_prefix_families(self):
        assert known_metric("shm.fallback_inline")
        assert known_metric("faults.fired.kill-host")
        assert known_metric("sessions.opened.thread")
        assert not known_metric("made.up.metric")


class TestBundleIO:
    def test_export_then_load_round_trips(self, tmp_path):
        evidence = make_evidence({"shm.bytes": 10},
                                 before=make_snapshot({"shm.bytes": 4}),
                                 spans=[{"trace": "t", "sid": "s",
                                         "parent": None, "name": "op.read",
                                         "start_us": 0.0, "end_us": 1.0,
                                         "status": "ok", "attrs": {}}],
                                 ping={"ok": True, "host": {}},
                                 chaos_report={"passed": True})
        written = evidence.export(str(tmp_path / "bundle"))
        assert set(written) == {"snapshot.json", "snapshot_before.json",
                                "spans.jsonl", "ping.json",
                                "chaos_report.json", "meta.json"}
        loaded = Evidence.from_bundle(str(tmp_path / "bundle"))
        assert loaded.flat["shm.bytes"] == 10
        assert loaded.flat_before["shm.bytes"] == 4
        assert loaded.spans[0]["name"] == "op.read"
        assert loaded.ping["ok"] is True
        assert loaded.chaos_report["passed"] is True
        assert loaded.meta["schema"] == BUNDLE_SCHEMA

    def test_missing_directory(self, tmp_path):
        with pytest.raises(DoctorError, match="not a directory"):
            Evidence.from_bundle(str(tmp_path / "ghost"))

    def test_missing_snapshot_is_an_error(self, tmp_path):
        bundle = tmp_path / "b"
        bundle.mkdir()
        (bundle / "meta.json").write_text('{"kind": "af-evidence"}')
        with pytest.raises(DoctorError, match="missing snapshot.json"):
            Evidence.from_bundle(str(bundle))

    def test_wrong_kind_rejected(self, tmp_path):
        bundle = tmp_path / "b"
        bundle.mkdir()
        (bundle / "meta.json").write_text('{"kind": "tarball"}')
        (bundle / "snapshot.json").write_text("{}")
        with pytest.raises(DoctorError, match="af-evidence"):
            Evidence.from_bundle(str(bundle))

    def test_newer_schema_rejected(self, tmp_path):
        bundle = tmp_path / "b"
        bundle.mkdir()
        (bundle / "meta.json").write_text(
            json.dumps({"kind": "af-evidence",
                        "schema": BUNDLE_SCHEMA + 1}))
        (bundle / "snapshot.json").write_text("{}")
        with pytest.raises(DoctorError, match="newer"):
            Evidence.from_bundle(str(bundle))

    def test_corrupt_snapshot_json(self, tmp_path):
        bundle = tmp_path / "b"
        bundle.mkdir()
        (bundle / "snapshot.json").write_text("{nope")
        with pytest.raises(DoctorError, match="not valid JSON"):
            Evidence.from_bundle(str(bundle))

    def test_bad_span_lines_are_skipped_not_fatal(self, tmp_path):
        bundle = tmp_path / "b"
        bundle.mkdir()
        (bundle / "snapshot.json").write_text("{}")
        (bundle / "spans.jsonl").write_text(
            '{"name": "op.read"}\n'
            'garbage line\n'
            '{"name": "op.write"}\n')
        loaded = Evidence.from_bundle(str(bundle))
        assert [span["name"] for span in loaded.spans] == \
            ["op.read", "op.write"]


class TestReportContract:
    """The report schema is a contract; these tests pin it."""

    TOP_LEVEL = {"schema", "source", "bundle", "analyzers", "findings",
                 "summary", "clean", "fingerprint"}
    FINDING_KEYS = {"check", "severity", "subsystem", "message", "action",
                    "evidence", "scope"}

    def test_top_level_keys_exact(self, clean_evidence):
        report = run_doctor(clean_evidence)
        assert set(report) == self.TOP_LEVEL
        assert report["schema"] == DOCTOR_SCHEMA
        assert report["clean"] is True
        assert set(report["summary"]) == {"critical", "warning", "info"}

    def test_finding_keys_exact(self):
        evidence = make_evidence({"host.backpressure.stalls": 2})
        report = run_doctor(evidence)
        assert report["findings"]
        for finding in report["findings"]:
            assert set(finding) == self.FINDING_KEYS

    def test_fingerprint_stable_across_replays(self, tmp_path):
        evidence = make_evidence(
            {"shm.fallback_inline": 5, "plane.selected.shm": 20},
            scopes={"a.af": {"host.respawns": 4}})
        evidence.export(str(tmp_path / "b"))
        first = run_doctor(Evidence.from_bundle(str(tmp_path / "b")))
        second = run_doctor(Evidence.from_bundle(str(tmp_path / "b")))
        assert first["fingerprint"] == second["fingerprint"]
        assert first["fingerprint"]["digest"] == \
            second["fingerprint"]["digest"]

    def test_fingerprint_tracks_findings(self, clean_evidence):
        dirty = make_evidence({"host.backpressure.stalls": 1})
        assert run_doctor(clean_evidence)["fingerprint"]["digest"] != \
            run_doctor(dirty)["fingerprint"]["digest"]

    def test_findings_sorted_most_severe_first(self):
        evidence = make_evidence(
            {"host.backpressure.stalls": 1},               # info
            scopes={"a.af": {"host.respawns": 5}},         # critical
            close_errors={"count": 1},                     # warning
        )
        report = run_doctor(evidence)
        severities = [finding["severity"]
                      for finding in report["findings"]]
        rank = {"critical": 0, "warning": 1, "info": 2}
        assert severities == sorted(severities, key=rank.__getitem__)

    def test_render_mentions_verdict_and_digest(self, clean_evidence):
        report = run_doctor(clean_evidence)
        text = render_report(report)
        assert "clean" in text
        assert report["fingerprint"]["digest"] in text


class TestRegistry:
    def test_shipped_analyzers_present_and_sorted(self):
        analyzers = build_analyzers()
        names = [analyzer.name for analyzer in analyzers]
        assert names == sorted(names)
        for expected in ("shm-slab-undersized", "respawn-storm",
                         "retry-dominated-opens", "queue-wait-skew",
                         "readahead-collapse"):
            assert expected in names

    def test_bad_severity_from_a_plugin_is_rejected(self, monkeypatch,
                                                    clean_evidence):
        class Broken(Analyzer):
            name = "zz-broken"
            def analyze(self, evidence):
                return [Finding(check=self.name, severity="fatal",
                                subsystem="x", message="boom")]

        engine._load_plugins()
        monkeypatch.setitem(engine._FACTORIES, "zz-test",
                            lambda config: [Broken()])
        with pytest.raises(DoctorError, match="invalid severity"):
            run_doctor(clean_evidence)

    def test_duplicate_analyzer_names_rejected(self, monkeypatch):
        class Dupe(Analyzer):
            name = "close-errors"  # collides with a shipped check
            def analyze(self, evidence):
                return []

        engine._load_plugins()
        monkeypatch.setitem(engine._FACTORIES, "zz-test",
                            lambda config: [Dupe()])
        with pytest.raises(DoctorError, match="duplicate analyzer"):
            build_analyzers()
