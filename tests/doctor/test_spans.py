"""Span-tree analyzer tests over the recorded JSONL fixture."""

from repro.doctor.spans import (
    QueueWaitSkew,
    ReadaheadCollapse,
    RetryDominatedOpens,
)

from tests.doctor.conftest import make_evidence


def span(name, sid="s", parent=None, trace="t", start=0.0, end=100.0,
         **attrs):
    return {"trace": trace, "sid": sid, "parent": parent, "name": name,
            "start_us": start, "end_us": end, "status": "ok",
            "attrs": attrs}


class TestRetryDominatedOpens:
    def test_fires_on_fixture(self, fixture_spans):
        found = RetryDominatedOpens().analyze(
            make_evidence(spans=fixture_spans))
        assert len(found) == 1
        assert found[0].scope == "trace-retry"
        assert found[0].evidence["retries"] == 3
        assert found[0].severity == "warning"

    def test_silent_below_min_retries(self):
        spans = [span("op.read", sid=f"o{i}", trace="t",
                      **({"cause": "retry"} if i == 0 else {}))
                 for i in range(4)]
        assert not RetryDominatedOpens().analyze(
            make_evidence(spans=spans))

    def test_silent_when_retries_are_a_small_fraction(self):
        spans = [span("op.read", sid=f"o{i}", trace="t",
                      **({"cause": "retry"} if i < 2 else {}))
                 for i in range(20)]  # 2/20 = 10% < 25%
        assert not RetryDominatedOpens().analyze(
            make_evidence(spans=spans))


class TestQueueWaitSkew:
    def test_fires_on_fixture(self, fixture_spans):
        found = QueueWaitSkew().analyze(make_evidence(spans=fixture_spans))
        assert len(found) == 1
        assert found[0].subsystem == "host"
        assert found[0].evidence["median_service_fraction"] < 0.2

    def _pairs(self, count, frame_us, service_us):
        spans = []
        for i in range(count):
            base = i * 10000.0
            spans.append(span("frame.read", sid=f"f{i}", start=base,
                              end=base + frame_us))
            spans.append(span("dispatch.read", sid=f"d{i}",
                              parent=f"f{i}", start=base,
                              end=base + service_us))
        return spans

    def test_silent_when_service_dominates(self):
        spans = self._pairs(10, frame_us=1000.0, service_us=900.0)
        assert not QueueWaitSkew().analyze(make_evidence(spans=spans))

    def test_silent_below_sample_floor(self):
        spans = self._pairs(3, frame_us=1000.0, service_us=10.0)
        assert not QueueWaitSkew().analyze(make_evidence(spans=spans))


class TestReadaheadCollapse:
    def test_fires_on_fixture(self, fixture_spans):
        found = ReadaheadCollapse().analyze(
            make_evidence(spans=fixture_spans))
        assert len(found) == 1
        assert found[0].evidence["demand_fraction"] == 0.7

    def _fills(self, total, demand):
        return [span("cache.fill", sid=f"c{i}",
                     cause="demand" if i < demand else "prefetch")
                for i in range(total)]

    def test_silent_when_prefetch_covers_reads(self):
        assert not ReadaheadCollapse().analyze(
            make_evidence(spans=self._fills(10, demand=2)))

    def test_silent_when_prefetch_is_simply_off(self):
        # all-demand fills mean read-ahead never engaged: a workload
        # choice, not a collapse
        assert not ReadaheadCollapse().analyze(
            make_evidence(spans=self._fills(10, demand=10)))

    def test_silent_below_sample_floor(self):
        assert not ReadaheadCollapse().analyze(
            make_evidence(spans=self._fills(4, demand=4)))
