"""Shared builders for doctor tests: synthetic snapshots + evidence."""

import json
import os

import pytest

from repro.doctor.engine import Evidence


def make_snapshot(metrics=None, scopes=None, **sections):
    """A minimal :meth:`Telemetry.snapshot`-shaped document."""
    doc = {"metrics": {"global": metrics or {}, "scopes": scopes or {}}}
    doc.update(sections)
    return doc


def make_evidence(metrics=None, scopes=None, *, before=None, spans=None,
                  ping=None, chaos_report=None, **sections):
    return Evidence(make_snapshot(metrics, scopes, **sections),
                    before=before, spans=spans, ping=ping,
                    chaos_report=chaos_report, source="test")


@pytest.fixture
def clean_evidence():
    """Evidence over an all-zeroes snapshot: every check stays silent."""
    return make_evidence({})


@pytest.fixture
def fixture_spans():
    """The recorded pathological trace (retry storm + queue-wait skew +
    read-ahead collapse) as parsed span dicts."""
    path = os.path.join(os.path.dirname(__file__), "fixtures",
                        "pathological_spans.jsonl")
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]
