"""Declarative-check tests: every shipped rule fires on a crafted
bundle and stays silent on a clean one; the linter rejects bad files."""

import pytest

from repro.doctor.checks import (
    DeclarativeCheck,
    default_checks_dir,
    lint_check,
    load_checks,
)
from repro.errors import DoctorError

from tests.doctor.conftest import make_evidence, make_snapshot


@pytest.fixture(scope="module")
def shipped():
    """name -> DeclarativeCheck for every shipped rule."""
    return {doc["name"]: DeclarativeCheck(doc)
            for doc in load_checks(default_checks_dir())}


def fires(check, evidence):
    return check.analyze(evidence)


class TestShippedChecksFireAndStaySilent:
    """One fire case + the shared silence case per shipped rule."""

    def test_at_least_eight_shipped_checks(self, shipped):
        assert len(shipped) >= 8

    def test_all_silent_on_clean_bundle(self, shipped, clean_evidence):
        for name, check in shipped.items():
            assert not fires(check, clean_evidence), \
                f"{name} fired on a clean bundle"

    def test_shm_slab_undersized(self, shipped):
        check = shipped["shm-slab-undersized"]
        dirty = make_evidence({"shm.fallback_inline": 5,
                               "plane.selected.shm": 20})
        found = fires(check, dirty)
        assert found and found[0].subsystem == "shm"
        assert found[0].evidence["ratio"] == pytest.approx(0.25)
        # below min_denominator the rule abstains even at a bad ratio
        sparse = make_evidence({"shm.fallback_inline": 4,
                                "plane.selected.shm": 5})
        assert not fires(check, sparse)

    def test_write_behind_degrading_trend(self, shipped):
        check = shipped["write-behind-degrading"]
        dirty = make_evidence(
            {"cache.flush_failures": 3},
            before=make_snapshot({"cache.flush_failures": 1}))
        found = fires(check, dirty)
        assert found and found[0].severity == "critical"
        assert found[0].evidence["cache.flush_failures.delta"] == 2
        # same counts, no movement -> silent
        flat = make_evidence({"cache.flush_failures": 3},
                             before=make_snapshot(
                                 {"cache.flush_failures": 3}))
        assert not fires(check, flat)
        # no before snapshot -> the trend rule abstains entirely
        single = make_evidence({"cache.flush_failures": 3})
        assert not fires(check, single)

    def test_write_behind_failing(self, shipped):
        found = fires(shipped["write-behind-failing"],
                      make_evidence({"cache.flush_failures": 1}))
        assert found and found[0].subsystem == "cache"

    def test_admission_misconfigured_gated_on_idle_host(self, shipped):
        check = shipped["admission-misconfigured"]
        idle_rejects = make_evidence(
            host={"loop#1": {"host.rejects": 4, "host.inflight": 0}})
        found = fires(check, idle_rejects)
        assert found and found[0].evidence["host.rejects"] == 4
        # rejects under genuine load are capacity, not misconfiguration
        busy_rejects = make_evidence(
            host={"loop#1": {"host.rejects": 4, "host.inflight": 30}})
        assert not fires(check, busy_rejects)

    def test_respawn_storm_is_per_container(self, shipped):
        check = shipped["respawn-storm"]
        dirty = make_evidence(scopes={"a.af": {"host.respawns": 3},
                                      "b.af": {"host.respawns": 1}})
        found = fires(check, dirty)
        assert [finding.scope for finding in found] == ["a.af"]
        assert found[0].severity == "critical"

    def test_span_buffer_overflow(self, shipped):
        # built via Evidence directly: the make_evidence helper's
        # ``spans`` kwarg is the span-record list, not this section
        from repro.doctor.engine import Evidence
        evidence = Evidence(make_snapshot(
            spans={"tracing": True, "buffered": 10, "dropped": 7}))
        found = fires(shipped["span-buffer-overflow"], evidence)
        assert found and found[0].evidence["spans.dropped"] == 7

    def test_close_errors(self, shipped):
        found = fires(shipped["close-errors"],
                      make_evidence(close_errors={"count": 2}))
        assert found and found[0].subsystem == "session"

    def test_transport_failures_ratio(self, shipped):
        check = shipped["transport-failures"]
        dirty = make_evidence(transport={"totals": {
            "requests_sent": 100, "requests_failed": 10}})
        assert fires(check, dirty)
        # 1 failure in 100 is under the 5% bound
        healthy = make_evidence(transport={"totals": {
            "requests_sent": 100, "requests_failed": 1}})
        assert not fires(check, healthy)
        # huge failure fraction but tiny volume: abstain
        sparse = make_evidence(transport={"totals": {
            "requests_sent": 4, "requests_failed": 3}})
        assert not fires(check, sparse)

    def test_readahead_ineffective_ratio(self, shipped):
        check = shipped["readahead-ineffective"]
        dirty = make_evidence(cache={"c": {"prefetch_issued": 20,
                                           "prefetch_used": 4}})
        found = fires(check, dirty)
        assert found and found[0].severity == "info"
        effective = make_evidence(cache={"c": {"prefetch_issued": 20,
                                               "prefetch_used": 18}})
        assert not fires(check, effective)

    def test_backpressure_stalls(self, shipped):
        found = fires(shipped["backpressure-stalls"],
                      make_evidence({"host.backpressure.stalls": 2}))
        assert found and found[0].subsystem == "host"

    def test_fanout_slow_consumer(self, shipped):
        check = shipped["fanout-slow-consumer"]
        found = fires(check, make_evidence({"fanout.evicted": 1,
                                            "fanout.dropped": 65}))
        assert found and found[0].subsystem == "fanout"
        assert found[0].severity == "warning"
        # heavy but fully-delivered fan-out traffic is healthy
        busy = make_evidence({"fanout.published": 500,
                              "fanout.delivered": 5000})
        assert not fires(check, busy)

    def test_lease_invalidation_storm_ratio(self, shipped):
        check = shipped["lease-invalidation-storm"]
        dirty = make_evidence({"lease.granted": 10,
                               "lease.invalidated": 9})
        found = fires(check, dirty)
        assert found and found[0].subsystem == "fanout"
        assert found[0].evidence["ratio"] == pytest.approx(0.9)
        # push-installed writes keep leases alive: few revocations
        healthy = make_evidence({"lease.granted": 10,
                                 "lease.invalidated": 2})
        assert not fires(check, healthy)
        # below min_denominator the rule abstains even at a bad ratio
        sparse = make_evidence({"lease.granted": 4,
                                "lease.invalidated": 4})
        assert not fires(check, sparse)


class TestLinter:
    GOOD = {"name": "x", "type": "threshold", "metric": "shm.bytes",
            "above": 0, "message": "m"}

    def lint(self, **overrides):
        doc = {**self.GOOD, **overrides}
        for key, value in list(doc.items()):
            if value is None:
                del doc[key]
        return lint_check(doc, where="test.yaml")

    def test_good_check_passes(self):
        assert self.lint()["name"] == "x"

    def test_non_mapping_rejected(self):
        with pytest.raises(DoctorError, match="must be a mapping"):
            lint_check(["not", "a", "map"])

    def test_unknown_type_rejected(self):
        with pytest.raises(DoctorError, match="type must be one of"):
            self.lint(type="regex")

    def test_unknown_keys_rejected(self):
        with pytest.raises(DoctorError, match="unknown keys"):
            self.lint(treshold=5)  # the classic typo

    def test_unknown_metric_rejected(self):
        with pytest.raises(DoctorError, match="unknown metric"):
            self.lint(metric="shm.fallback_inlien")

    def test_unknown_metric_in_when_rejected(self):
        with pytest.raises(DoctorError, match="unknown metric"):
            self.lint(when={"metric": "host.infliht", "at_most": 2})

    def test_bad_severity_rejected(self):
        with pytest.raises(DoctorError, match="severity"):
            self.lint(severity="catastrophic")

    def test_missing_message_rejected(self):
        with pytest.raises(DoctorError, match="message"):
            self.lint(message=None)

    def test_two_comparators_rejected(self):
        with pytest.raises(DoctorError, match="exactly one"):
            self.lint(above=0, below=5)

    def test_no_comparator_rejected(self):
        with pytest.raises(DoctorError, match="exactly one"):
            self.lint(above=None)

    def test_non_numeric_bound_rejected(self):
        with pytest.raises(DoctorError, match="must be a number"):
            self.lint(above="lots")

    def test_ratio_requires_over(self):
        with pytest.raises(DoctorError, match="needs 'over'"):
            self.lint(type="ratio")

    def test_ratio_bad_min_denominator(self):
        with pytest.raises(DoctorError, match="min_denominator"):
            self.lint(type="ratio", over="plane.selected.shm",
                      min_denominator=0)

    def test_trend_needs_delta_comparator(self):
        with pytest.raises(DoctorError, match="exactly one"):
            self.lint(type="trend", above=None)

    def test_bad_scope_rejected(self):
        with pytest.raises(DoctorError, match="scope"):
            self.lint(scope="galaxy")

    def test_ratio_is_global_only(self):
        with pytest.raises(DoctorError, match="global-only"):
            self.lint(type="ratio", over="plane.selected.shm",
                      scope="container")


class TestLoadChecks:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(DoctorError, match="does not exist"):
            load_checks(str(tmp_path / "ghost"))

    def test_loads_and_sorts_custom_dir(self, tmp_path):
        (tmp_path / "b.yaml").write_text(
            "name: bee\ntype: threshold\nmetric: shm.bytes\n"
            "above: 0\nmessage: m\n")
        (tmp_path / "a.yaml").write_text(
            "name: ay\ntype: threshold\nmetric: shm.bytes\n"
            "above: 0\nmessage: m\n")
        (tmp_path / "notes.txt").write_text("ignored")
        names = [doc["name"] for doc in load_checks(str(tmp_path))]
        assert names == ["ay", "bee"]

    def test_duplicate_names_rejected(self, tmp_path):
        body = ("name: same\ntype: threshold\nmetric: shm.bytes\n"
                "above: 0\nmessage: m\n")
        (tmp_path / "a.yaml").write_text(body)
        (tmp_path / "b.yaml").write_text(body)
        with pytest.raises(DoctorError, match="duplicate check name"):
            load_checks(str(tmp_path))

    def test_parse_error_names_the_file(self, tmp_path):
        (tmp_path / "broken.yaml").write_text("\tname: tabbed\n")
        with pytest.raises(DoctorError, match="broken.yaml"):
            load_checks(str(tmp_path))

    def test_lint_error_names_the_file(self, tmp_path):
        (tmp_path / "typo.yaml").write_text(
            "name: t\ntype: threshold\nmetric: no.such.metric\n"
            "above: 0\nmessage: m\n")
        with pytest.raises(DoctorError, match="typo.yaml"):
            load_checks(str(tmp_path))

    def test_shipped_checks_all_lint(self):
        docs = load_checks(default_checks_dir())
        assert len(docs) >= 8
