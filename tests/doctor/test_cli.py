"""CLI tests: the exit-code contract and bundle export plumbing."""

import json
import os

import pytest

from repro.cli import main
from repro.core import Container

from tests.doctor.conftest import make_evidence, make_snapshot


@pytest.fixture
def workdir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


@pytest.fixture
def demo(workdir):
    main(["create", "demo.af", "repro.sentinels.null:NullFilterSentinel"])
    Container.load("demo.af").write_data(b"payload " * 4096)
    return "demo.af"


class TestStatsExport:
    def test_export_writes_a_loadable_bundle(self, demo, capsys):
        assert main(["stats", demo, "--export", "bundle"]) == 0
        err = capsys.readouterr().err
        assert "exported evidence bundle" in err
        files = set(os.listdir("bundle"))
        assert {"meta.json", "snapshot.json",
                "snapshot_before.json"} <= files
        meta = json.loads(open("bundle/meta.json").read())
        assert meta["kind"] == "af-evidence"
        assert meta["container"] == demo

    def test_export_traces_the_sample_workload(self, demo):
        main(["stats", demo, "--export", "bundle"])
        assert os.path.exists("bundle/spans.jsonl")

    def test_human_output_mentions_latency_split(self, demo, capsys):
        assert main(["stats", demo]) == 0
        assert "latency split" in capsys.readouterr().out

    def test_json_shape_is_unchanged_by_export_feature(self, demo,
                                                       capsys):
        assert main(["stats", demo, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"file", "snapshot"}


class TestDoctorExitCodes:
    """The contract scripts rely on: 0 clean, 1 findings, 2 error."""

    def test_clean_bundle_exits_zero(self, demo, capsys):
        main(["stats", demo, "--export", "bundle"])
        assert main(["doctor", "--bundle", "bundle"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, workdir, capsys):
        make_evidence(scopes={"a.af": {"host.respawns": 5}}).export(
            "dirty")
        assert main(["doctor", "--bundle", "dirty"]) == 1
        assert "respawn-storm" in capsys.readouterr().out

    def test_missing_bundle_exits_two(self, workdir, capsys):
        assert main(["doctor", "--bundle", "ghost"]) == 2
        assert "afctl doctor:" in capsys.readouterr().err

    def test_bad_checks_dir_exits_two(self, workdir):
        make_evidence({}).export("bundle")
        assert main(["doctor", "--bundle", "bundle",
                     "--checks", "no-such-checks"]) == 2

    def test_no_source_is_a_usage_error(self, workdir):
        with pytest.raises(SystemExit) as excinfo:
            main(["doctor"])
        assert excinfo.value.code == 2

    def test_live_capture_runs_clean(self, demo):
        assert main(["doctor", "--live", demo,
                     "--strategy", "thread"]) == 0


class TestDoctorOutput:
    def test_json_report_schema(self, workdir, capsys):
        make_evidence({"host.backpressure.stalls": 3}).export("bundle")
        assert main(["doctor", "--bundle", "bundle", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == 1
        assert report["summary"]["info"] >= 1
        assert report["fingerprint"]["digest"]

    def test_report_file_matches_stdout_json(self, workdir, capsys):
        make_evidence({}).export("bundle")
        assert main(["doctor", "--bundle", "bundle", "--json",
                     "--report", "report.json"]) == 0
        stdout_doc = json.loads(capsys.readouterr().out)
        file_doc = json.loads(open("report.json").read())
        assert stdout_doc == file_doc

    def test_custom_checks_dir_replaces_shipped(self, workdir, capsys):
        (workdir / "checks").mkdir()
        (workdir / "checks" / "only.yaml").write_text(
            "name: custom-only\ntype: threshold\nmetric: shm.bytes\n"
            "above: 0\nseverity: info\nsubsystem: shm\n"
            "message: custom rule fired\n")
        make_evidence({"shm.bytes": 100,
                       "host.backpressure.stalls": 5}).export("bundle")
        assert main(["doctor", "--bundle", "bundle", "--json",
                     "--checks", "checks"]) == 1
        report = json.loads(capsys.readouterr().out)
        fired = {finding["check"] for finding in report["findings"]}
        # the custom rule fired; the shipped backpressure rule is gone
        # (span analyzers remain: --checks swaps declarative rules only)
        assert "custom-only" in fired
        assert "backpressure-stalls" not in fired

    def test_trend_finding_from_two_snapshot_bundle(self, workdir,
                                                    capsys):
        evidence = make_evidence(
            {"cache.flush_failures": 4},
            before=make_snapshot({"cache.flush_failures": 1}))
        evidence.export("bundle")
        assert main(["doctor", "--bundle", "bundle"]) == 1
        assert "write-behind" in capsys.readouterr().out
