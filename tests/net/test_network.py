"""Tests for the simulated network fabric."""

import pytest

from repro.errors import AddressError, NetworkError
from repro.net import (
    AccountingClock,
    Address,
    FileServer,
    LinkProfile,
    Network,
    Request,
    Response,
    Service,
)


class Echo(Service):
    def op_echo(self, request):
        return Response(payload=request.payload, fields=dict(request.fields))


@pytest.fixture
def net():
    return Network()


@pytest.fixture
def addr():
    return Address("echo.example", 9)


class TestAddress:
    def test_str(self):
        assert str(Address("h", 80, "http")) == "http://h:80"
        assert str(Address("h", 80)) == "h:80"

    def test_parse_full(self):
        address, path = Address.parse("ftp://files.example:21/pub/data.txt")
        assert address == Address("files.example", 21, "ftp")
        assert path == "/pub/data.txt"

    def test_parse_bare_host(self):
        address, path = Address.parse("files.example")
        assert address == Address("files.example", 0)
        assert path == ""

    def test_parse_rejects_bad_port(self):
        with pytest.raises(AddressError):
            Address.parse("host:notaport")

    def test_parse_rejects_empty_host(self):
        with pytest.raises(AddressError):
            Address.parse(":80")

    def test_port_range_validated(self):
        with pytest.raises(AddressError):
            Address("h", 70000)

    def test_ordering_and_hashing(self):
        a, b = Address("a", 1), Address("b", 1)
        assert a < b
        assert len({a, b, Address("a", 1)}) == 2


class TestBinding:
    def test_bind_and_connect(self, net, addr):
        net.bind(addr, Echo())
        conn = net.connect(addr)
        response = conn.call("echo", b"hi", tag=1)
        assert response.ok and response.payload == b"hi"
        assert response.fields["tag"] == 1

    def test_double_bind_rejected(self, net, addr):
        net.bind(addr, Echo())
        with pytest.raises(AddressError):
            net.bind(addr, Echo())

    def test_connect_unbound_rejected(self, net, addr):
        with pytest.raises(AddressError):
            net.connect(addr)

    def test_unbind(self, net, addr):
        net.bind(addr, Echo())
        net.unbind(addr)
        with pytest.raises(AddressError):
            net.connect(addr)

    def test_unbind_unknown_rejected(self, net, addr):
        with pytest.raises(AddressError):
            net.unbind(addr)

    def test_addresses_sorted(self, net):
        net.bind(Address("b", 1), Echo())
        net.bind(Address("a", 1), Echo())
        assert net.addresses() == [Address("a", 1), Address("b", 1)]

    def test_bind_sets_backrefs(self, net, addr):
        service = net.bind(addr, Echo())
        assert service.address == addr
        assert service.network is net


class TestTransportAccounting:
    def test_charges_latency_and_bandwidth(self):
        profile = LinkProfile(latency_us=100.0, bandwidth_mbps=100.0)
        net = Network(profile=profile)
        addr = Address("echo", 1)
        net.bind(addr, Echo())
        before = net.clock.now_us()
        net.connect(addr).call("echo", b"x" * 1250)  # 1250 B = 100 µs at 100 Mbps
        elapsed = net.clock.now_us() - before
        # two latencies plus request+response serialization; request alone
        # contributes >= 100 µs of serialization.
        assert elapsed > 300.0
        assert net.stats.requests == 1
        assert net.stats.bytes_sent > 1250

    def test_transfer_cost_formula(self):
        profile = LinkProfile(latency_us=50.0, bandwidth_mbps=100.0)
        assert profile.transfer_us(0) == 50.0
        # 100 Mbps = 100 bits/µs -> 1250 bytes = 10000 bits = 100 µs
        assert profile.transfer_us(1250) == pytest.approx(150.0)

    def test_per_link_profile_overrides_default(self):
        net = Network(profile=LinkProfile(latency_us=1.0))
        slow = Address("slow", 1)
        net.bind(slow, Echo(), profile=LinkProfile(latency_us=10_000.0))
        before = net.clock.now_us()
        net.connect(slow).call("echo")
        assert net.clock.now_us() - before >= 20_000.0

    def test_stats_per_service(self, net, addr):
        net.bind(addr, Echo())
        conn = net.connect(addr)
        for _ in range(3):
            conn.call("echo")
        assert net.stats.per_service[str(addr)] == 3

    def test_accounting_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            AccountingClock().charge(-1.0)


class TestFailures:
    def test_partition_blocks_calls(self, net, addr):
        net.bind(addr, Echo())
        conn = net.connect(addr)
        net.partition(addr)
        with pytest.raises(NetworkError):
            conn.call("echo")
        net.heal(addr)
        assert conn.call("echo").ok

    def test_partition_and_heal_are_counted(self, net, addr):
        net.bind(addr, Echo())
        conn = net.connect(addr)
        net.partition(addr)
        assert net.stats.partitions == 1
        for _ in range(3):
            with pytest.raises(NetworkError):
                conn.call("echo")
        assert net.stats.partition_drops == 3
        net.heal(addr)
        assert net.stats.heals == 1
        net.heal(addr)  # idempotent: healing a healthy link counts nothing
        assert net.stats.heals == 1
        assert conn.call("echo").ok

    def test_timed_partition_heals_itself(self, net, addr):
        import time

        net.bind(addr, Echo())
        conn = net.connect(addr)
        net.partition(addr, duration=0.05)
        with pytest.raises(NetworkError):
            conn.call("echo")
        time.sleep(0.08)
        assert conn.call("echo").ok  # lazily healed on the next call
        assert net.stats.heals == 1

    def test_expired_deadline_fails_before_transport(self, net, addr):
        from repro.core.policy import Deadline
        from repro.errors import DeadlineExceededError

        net.bind(addr, Echo())
        conn = net.connect(addr)
        charged_before = net.stats.charged_us
        with pytest.raises(DeadlineExceededError):
            conn.call("echo", deadline=Deadline.after(0.0))
        assert net.stats.charged_us == charged_before  # nothing was moved

    def test_fault_plane_fail_and_service_rules(self, net, addr):
        from repro.core.faults import FaultPlane

        net.bind(addr, Echo())
        conn = net.connect(addr)
        FaultPlane(seed=3).fail_network(times=1).arm_network(net)
        with pytest.raises(NetworkError, match="injected"):
            conn.call("echo")
        assert conn.call("echo").ok  # rule exhausted

        service_plane = FaultPlane(seed=4).fail_service(times=1)
        service_plane.arm_service(net._services[addr].service)
        response = conn.call("echo")
        assert not response.ok and "injected service fault" in response.error
        assert conn.call("echo").ok

    def test_fault_plane_timed_partition_rule(self, net, addr):
        import time

        from repro.core.faults import FaultPlane

        net.bind(addr, Echo())
        conn = net.connect(addr)
        FaultPlane(seed=5).partition(0.05, times=1).arm_network(net)
        with pytest.raises(NetworkError, match="partition"):
            conn.call("echo")
        time.sleep(0.08)
        assert conn.call("echo").ok
        assert net.stats.partitions == 1

    def test_unknown_op_is_protocol_failure(self, net, addr):
        net.bind(addr, Echo())
        response = net.connect(addr).call("nosuch")
        assert not response.ok
        assert "unknown operation" in response.error

    def test_service_exception_becomes_failure_response(self, net, addr):
        class Buggy(Service):
            def op_boom(self, request):
                raise RuntimeError("kaput")

        net.bind(addr, Buggy())
        response = net.connect(addr).call("boom")
        assert not response.ok
        assert "kaput" in response.error

    def test_expect_raises_on_failure(self, net, addr):
        net.bind(addr, Echo())
        with pytest.raises(NetworkError):
            net.connect(addr).expect("nosuch")

    def test_closed_connection_rejected(self, net, addr):
        net.bind(addr, Echo())
        conn = net.connect(addr)
        conn.close()
        with pytest.raises(NetworkError):
            conn.call("echo")

    def test_connection_context_manager(self, net, addr):
        net.bind(addr, Echo())
        with net.connect(addr) as conn:
            assert conn.call("echo").ok
        with pytest.raises(NetworkError):
            conn.call("echo")


class TestServiceIntrospection:
    def test_ops_listing(self):
        server = FileServer()
        ops = server.ops()
        assert {"read", "write", "stat", "list"} <= set(ops)


class TestAddressProperties:
    from hypothesis import given, strategies as st

    host_strategy = st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-",
        min_size=1, max_size=20,
    ).filter(lambda h: "/" not in h and ":" not in h and h.strip())

    @given(host=host_strategy, port=st.integers(1, 65535),
           scheme=st.sampled_from(["", "ftp", "http", "afp"]))
    def test_parse_str_roundtrip(self, host, port, scheme):
        original = Address(host=host, port=port, scheme=scheme)
        parsed, path = Address.parse(str(original))
        assert parsed == original
        assert path == ""

    @given(host=host_strategy, port=st.integers(1, 65535),
           path=st.text(alphabet="abc/xyz.", max_size=16))
    def test_parse_extracts_path(self, host, port, path):
        parsed, got_path = Address.parse(f"{host}:{port}/{path}")
        assert parsed.host == host
        assert parsed.port == port
        assert got_path == "/" + path
