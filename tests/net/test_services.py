"""Tests for HTTP, FTP, POP3/SMTP, quote, KV and registry services."""

import pytest

from repro.net import (
    Address,
    FtpServer,
    HttpServer,
    KeyValueStore,
    Network,
    Pop3Server,
    QuoteServer,
    RegistryServer,
    SmtpServer,
)
from repro.net.ftpd import FtpAccount
from repro.net.pop3 import MailMessage
from repro.net.smtpd import parse_rfc822


@pytest.fixture
def net():
    return Network()


def bind(net, service, name="svc"):
    addr = Address(name, 1)
    net.bind(addr, service)
    return net.connect(addr)


class TestHttp:
    def test_get_full(self, net):
        conn = bind(net, HttpServer({"/index.html": b"<html>"}))
        response = conn.expect("GET", path="/index.html")
        assert response.payload == b"<html>"
        assert response.fields["status"] == 200

    def test_get_404(self, net):
        conn = bind(net, HttpServer())
        response = conn.call("GET", path="/missing")
        assert not response.ok and response.fields["status"] == 404

    def test_conditional_get_304(self, net):
        server = HttpServer({"/d": b"body"})
        conn = bind(net, server)
        etag = conn.expect("GET", path="/d").fields["etag"]
        response = conn.expect("GET", path="/d", if_none_match=etag)
        assert response.fields["status"] == 304
        assert response.payload == b""
        assert server.conditional_hits == 1

    def test_etag_changes_on_put(self, net):
        server = HttpServer({"/d": b"v1"})
        conn = bind(net, server)
        etag = conn.expect("GET", path="/d").fields["etag"]
        conn.expect("PUT", b"v2", path="/d")
        response = conn.expect("GET", path="/d", if_none_match=etag)
        assert response.fields["status"] == 200
        assert response.payload == b"v2"

    def test_range_request(self, net):
        conn = bind(net, HttpServer({"/d": b"0123456789"}))
        response = conn.expect("GET", path="/d", range_start=2, range_end=5)
        assert response.payload == b"234"
        assert response.fields["status"] == 206

    def test_head(self, net):
        conn = bind(net, HttpServer({"/d": b"abcd"}))
        response = conn.expect("HEAD", path="/d")
        assert response.fields["length"] == 4
        assert response.payload == b""

    def test_put_creates_then_updates(self, net):
        conn = bind(net, HttpServer())
        assert conn.expect("PUT", b"a", path="/x").fields["status"] == 201
        assert conn.expect("PUT", b"b", path="/x").fields["status"] == 200

    def test_delete(self, net):
        conn = bind(net, HttpServer({"/d": b"x"}))
        assert conn.expect("DELETE", path="/d").fields["status"] == 204
        assert not conn.call("GET", path="/d").ok


class TestFtp:
    @pytest.fixture
    def ftp(self, net):
        accounts = {
            "alice": FtpAccount(password="pw", read_prefixes=("pub/", "home/alice/"),
                                write_prefixes=("home/alice/",)),
        }
        server = FtpServer(accounts, files={"pub/readme": b"public",
                                            "home/alice/notes": b"mine",
                                            "home/bob/secret": b"private"})
        return bind(net, server), server

    def login(self, conn, user="alice", password="pw"):
        return conn.expect("LOGIN", user=user, password=password).fields["session"]

    def test_login_bad_password(self, ftp):
        conn, _ = ftp
        assert not conn.call("LOGIN", user="alice", password="wrong").ok

    def test_retr_requires_login(self, ftp):
        conn, _ = ftp
        assert not conn.call("RETR", path="pub/readme").ok

    def test_retr(self, ftp):
        conn, _ = ftp
        session = self.login(conn)
        response = conn.expect("RETR", session=session, path="pub/readme")
        assert response.payload == b"public"

    def test_retr_range(self, ftp):
        conn, _ = ftp
        session = self.login(conn)
        response = conn.expect("RETR", session=session, path="pub/readme",
                               offset=2, size=3)
        assert response.payload == b"bli"

    def test_access_control_denies_foreign_home(self, ftp):
        conn, _ = ftp
        session = self.login(conn)
        assert not conn.call("RETR", session=session, path="home/bob/secret").ok

    def test_stor_and_append(self, ftp):
        conn, server = ftp
        session = self.login(conn)
        conn.expect("STOR", b"v1", session=session, path="home/alice/out")
        conn.expect("STOR", b"+2", session=session, path="home/alice/out", append=True)
        assert server.get_file("home/alice/out") == b"v1+2"

    def test_stor_denied_outside_write_prefix(self, ftp):
        conn, _ = ftp
        session = self.login(conn)
        assert not conn.call("STOR", b"x", session=session, path="pub/readme").ok

    def test_size_and_list(self, ftp):
        conn, _ = ftp
        session = self.login(conn)
        assert conn.expect("SIZE", session=session, path="pub/readme").fields["size"] == 6
        names = conn.expect("LIST", session=session, prefix="home/").fields["names"]
        assert names == ["home/alice/notes"]  # bob's file filtered by ACL

    def test_quit_invalidates_session(self, ftp):
        conn, _ = ftp
        session = self.login(conn)
        conn.expect("QUIT", session=session)
        assert not conn.call("RETR", session=session, path="pub/readme").ok


class TestMail:
    @pytest.fixture
    def mail(self, net):
        pop3 = Pop3Server({"carol": "pw"})
        smtp = SmtpServer()
        smtp.register_domain("example.com", pop3)
        return bind(net, pop3, "pop"), bind(net, smtp, "smtp"), pop3, smtp

    def test_send_delivers_to_local_domain(self, mail):
        pop_conn, smtp_conn, pop3, _ = mail
        body = b"From: dave@x\r\nTo: carol@example.com\r\nSubject: hi\r\n\r\nhello"
        response = smtp_conn.expect("SEND", body, sender="dave@x",
                                    recipients=["carol@example.com"])
        assert response.fields["statuses"]["carol@example.com"] == "delivered"
        assert pop3.message_count("carol") == 1

    def test_send_foreign_domain_relays(self, mail):
        _, smtp_conn, _, smtp = mail
        response = smtp_conn.expect("SEND", b"Subject: x\r\n\r\nbody",
                                    sender="a@b", recipients=["zed@other.org"])
        assert response.fields["statuses"]["zed@other.org"] == "relayed"
        assert smtp.sent[-1].recipient == "zed@other.org"

    def test_send_without_recipients_fails(self, mail):
        _, smtp_conn, _, _ = mail
        assert not smtp_conn.call("SEND", b"x", sender="a@b", recipients=[]).ok

    def test_pop3_stat_list_retr(self, mail):
        pop_conn, _, pop3, _ = mail
        pop3.deliver(MailMessage("a@b", "carol@example.com", "s1", "body1"))
        pop3.deliver(MailMessage("a@b", "carol@example.com", "s2", "body2"))
        stat = pop_conn.expect("STAT", user="carol", password="pw").fields
        assert stat["count"] == 2
        listing = pop_conn.expect("LIST", user="carol", password="pw").fields["messages"]
        assert [m["index"] for m in listing] == [0, 1]
        retr = pop_conn.expect("RETR", user="carol", password="pw", index=1)
        assert b"Subject: s2" in retr.payload

    def test_pop3_dele_applies_at_quit(self, mail):
        pop_conn, _, pop3, _ = mail
        pop3.deliver(MailMessage("a@b", "carol@example.com", "s", "b"))
        pop_conn.expect("DELE", user="carol", password="pw", index=0)
        # still present until QUIT, but hidden from STAT
        assert pop_conn.expect("STAT", user="carol", password="pw").fields["count"] == 0
        pop_conn.expect("QUIT", user="carol", password="pw")
        assert pop3.message_count("carol") == 0

    def test_pop3_bad_auth(self, mail):
        pop_conn, _, _, _ = mail
        assert not pop_conn.call("STAT", user="carol", password="nope").ok

    def test_parse_rfc822_roundtrip(self):
        message = MailMessage("a@b.c", "d@e.f", "Subject line", "two\nlines")
        parsed = parse_rfc822(message.render())
        assert parsed.sender == "a@b.c"
        assert parsed.recipient == "d@e.f"
        assert parsed.subject == "Subject line"
        assert parsed.body == "two\nlines"


class TestQuotes:
    def test_quote_and_batch(self, net):
        server = QuoteServer({"ACME": 100.0, "GLOBEX": 50.0})
        conn = bind(net, server)
        assert conn.expect("QUOTE", symbol="ACME").fields["price"] == 100.0
        batch = conn.expect("BATCH", symbols=["ACME", "NOPE"]).fields
        assert batch["quotes"] == {"ACME": 100.0}
        assert batch["missing"] == ["NOPE"]

    def test_unknown_symbol_fails(self, net):
        conn = bind(net, QuoteServer())
        assert not conn.call("QUOTE", symbol="X").ok

    def test_tick_moves_prices_deterministically(self, net):
        a = QuoteServer({"ACME": 100.0}, seed=7)
        b = QuoteServer({"ACME": 100.0}, seed=7)
        a.tick(5)
        b.tick(5)
        conn_a, conn_b = bind(net, a, "a"), bind(net, b, "b")
        price_a = conn_a.expect("QUOTE", symbol="ACME").fields["price"]
        price_b = conn_b.expect("QUOTE", symbol="ACME").fields["price"]
        assert price_a == price_b
        assert price_a != 100.0

    def test_generation_tracks_changes(self, net):
        server = QuoteServer({"ACME": 1.0})
        conn = bind(net, server)
        g0 = conn.expect("QUOTE", symbol="ACME").fields["generation"]
        server.tick()
        g1 = conn.expect("QUOTE", symbol="ACME").fields["generation"]
        assert g1 == g0 + 1

    def test_symbols(self, net):
        conn = bind(net, QuoteServer({"B": 1.0, "A": 2.0}))
        assert conn.expect("SYMBOLS").fields["symbols"] == ["A", "B"]


class TestKeyValue:
    def test_get_put_delete(self, net):
        conn = bind(net, KeyValueStore({"k": b"v"}))
        assert conn.expect("get", key="k").payload == b"v"
        conn.expect("put", b"v2", key="k")
        assert conn.expect("get", key="k").payload == b"v2"
        conn.expect("delete", key="k")
        assert not conn.call("get", key="k").ok

    def test_cas_succeeds_on_match(self, net):
        conn = bind(net, KeyValueStore({"k": b"v"}))
        version = conn.expect("get", key="k").fields["version"]
        response = conn.expect("cas", b"v2", key="k", expected_version=version)
        assert response.fields["version"] == version + 1

    def test_cas_conflict(self, net):
        conn = bind(net, KeyValueStore({"k": b"v"}))
        response = conn.call("cas", b"v2", key="k", expected_version=99)
        assert not response.ok
        assert response.fields["current_version"] == 1

    def test_scan_and_store_version(self, net):
        store = KeyValueStore({"user:1": b"a", "user:2": b"b", "post:1": b"c"})
        conn = bind(net, store)
        scan = conn.expect("scan", pattern="user:*").fields
        assert sorted(scan["keys"]) == ["user:1", "user:2"]
        before = scan["store_version"]
        store.put("user:3", b"d")
        assert conn.expect("scan", pattern="*").fields["store_version"] > before

    def test_mget(self, net):
        conn = bind(net, KeyValueStore({"a": b"1", "b": b"2"}))
        response = conn.expect("mget", keys=["a", "missing", "b"])
        assert response.payload == b"1\n2"
        assert set(response.fields["found"]) == {"a", "b"}


class TestRegistry:
    @pytest.fixture
    def reg(self, net):
        server = RegistryServer()
        server.set_value(r"HKLM\Software\App", "Version", "1.2", "REG_SZ")
        server.set_value(r"HKLM\Software\App", "Port", 8080, "REG_DWORD")
        return bind(net, server), server

    def test_get_set(self, reg):
        conn, _ = reg
        assert conn.expect("get", key=r"HKLM\Software\App",
                           name="Version").fields["data"] == "1.2"
        conn.expect("set", key=r"HKLM\Software\App", name="Version",
                    type="REG_SZ", data="2.0")
        assert conn.expect("get", key=r"HKLM\Software\App",
                           name="Version").fields["data"] == "2.0"

    def test_get_missing_fails(self, reg):
        conn, _ = reg
        assert not conn.call("get", key=r"HKLM\Nope", name="X").ok

    def test_bad_type_rejected(self, reg):
        conn, _ = reg
        assert not conn.call("set", key="HKLM", name="n",
                             type="REG_MAGIC", data=1).ok

    def test_dword_coerced_to_int(self, reg):
        _, server = reg
        server.set_value("HKLM", "n", "42", "REG_DWORD")
        assert server.get_value("HKLM", "n") == ("REG_DWORD", 42)

    def test_enum(self, reg):
        conn, _ = reg
        fields = conn.expect("enum", key=r"HKLM\Software").fields
        assert fields["subkeys"] == ["App"]
        fields = conn.expect("enum", key=r"HKLM\Software\App").fields
        assert set(fields["values"]) == {"Version", "Port"}

    def test_delete_value_and_key(self, reg):
        conn, _ = reg
        conn.expect("delete_value", key=r"HKLM\Software\App", name="Port")
        assert not conn.call("get", key=r"HKLM\Software\App", name="Port").ok
        conn.expect("delete_key", key=r"HKLM\Software\App")
        assert not conn.call("enum", key=r"HKLM\Software\App").ok

    def test_delete_root_rejected(self, reg):
        conn, _ = reg
        assert not conn.call("delete_key", key="").ok

    def test_dump_subtree(self, reg):
        conn, _ = reg
        tree = conn.expect("dump", key=r"HKLM\Software").fields["tree"]
        assert tree["subkeys"]["App"]["values"]["Port"]["data"] == 8080

    def test_forward_slashes_accepted(self, reg):
        conn, _ = reg
        assert conn.expect("get", key="HKLM/Software/App",
                           name="Version").ok
