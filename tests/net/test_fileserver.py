"""Tests for the remote file server service."""

import pytest
from hypothesis import given, strategies as st

from repro.net import Address, FileServer, Network


@pytest.fixture
def served():
    net = Network()
    addr = Address("files", 7000)
    server = net.bind(addr, FileServer({"data.bin": b"0123456789"}))
    return net.connect(addr), server


class TestRead:
    def test_full_read(self, served):
        conn, _ = served
        response = conn.expect("read", path="data.bin", offset=0, size=10)
        assert response.payload == b"0123456789"
        assert response.fields["eof"] is True

    def test_ranged_read(self, served):
        conn, _ = served
        response = conn.expect("read", path="data.bin", offset=3, size=4)
        assert response.payload == b"3456"
        assert response.fields["eof"] is False

    def test_read_missing_file_fails(self, served):
        conn, _ = served
        assert not conn.call("read", path="nope", offset=0, size=1).ok

    def test_read_reports_version(self, served):
        conn, _ = served
        v1 = conn.expect("read", path="data.bin", offset=0, size=1).fields["version"]
        conn.expect("write", b"X", path="data.bin", offset=0)
        v2 = conn.expect("read", path="data.bin", offset=0, size=1).fields["version"]
        assert v2 == v1 + 1


class TestWrite:
    def test_write_in_place(self, served):
        conn, server = served
        response = conn.expect("write", b"ABC", path="data.bin", offset=2)
        assert response.fields["written"] == 3
        assert server.get_file("data.bin") == b"01ABC56789"

    def test_write_creates_file(self, served):
        conn, server = served
        conn.expect("write", b"new", path="fresh.txt", offset=0)
        assert server.get_file("fresh.txt") == b"new"

    def test_append(self, served):
        conn, server = served
        response = conn.expect("append", b"++", path="data.bin")
        assert response.fields["offset"] == 10
        assert server.get_file("data.bin") == b"0123456789++"

    def test_truncate(self, served):
        conn, server = served
        conn.expect("truncate", path="data.bin", size=4)
        assert server.get_file("data.bin") == b"0123"

    def test_truncate_missing_fails(self, served):
        conn, _ = served
        assert not conn.call("truncate", path="nope", size=0).ok


class TestNamespace:
    def test_stat(self, served):
        conn, _ = served
        response = conn.expect("stat", path="data.bin")
        assert response.fields["size"] == 10

    def test_stat_missing_fails(self, served):
        conn, _ = served
        assert not conn.call("stat", path="ghost").ok

    def test_create_exclusive(self, served):
        conn, _ = served
        assert conn.call("create", path="data.bin", exclusive=True).ok is False
        assert conn.call("create", b"seed", path="other", exclusive=True).ok

    def test_delete(self, served):
        conn, _ = served
        conn.expect("delete", path="data.bin")
        assert not conn.call("stat", path="data.bin").ok

    def test_delete_missing_fails(self, served):
        conn, _ = served
        assert not conn.call("delete", path="ghost").ok

    def test_list_with_pattern(self, served):
        conn, server = served
        server.put_file("logs/a.log", b"")
        server.put_file("logs/b.log", b"")
        response = conn.expect("list", pattern="logs/*")
        assert response.fields["names"] == ["logs/a.log", "logs/b.log"]


class TestWatchers:
    def test_subscribe_sees_mutations(self, served):
        conn, server = served
        seen = []
        server.subscribe(seen.append)
        conn.expect("write", b"z", path="data.bin", offset=0)
        conn.expect("delete", path="data.bin")
        assert seen == ["data.bin", "data.bin"]

    def test_put_file_notifies(self, served):
        _, server = served
        seen = []
        server.subscribe(seen.append)
        server.put_file("x", b"1")
        assert seen == ["x"]


class TestProperties:
    @given(st.binary(max_size=200), st.integers(0, 64), st.integers(0, 64))
    def test_remote_read_matches_local_slice(self, body, offset, size):
        net = Network()
        addr = Address("f", 1)
        net.bind(addr, FileServer({"f": body}))
        response = net.connect(addr).expect("read", path="f",
                                            offset=offset, size=size)
        assert response.payload == body[offset:offset + size]

    @given(st.lists(st.tuples(st.integers(0, 100), st.binary(min_size=1, max_size=32)),
                    min_size=1, max_size=10))
    def test_writes_match_reference_buffer(self, writes):
        from repro.util.bytesbuf import ByteBuffer

        net = Network()
        addr = Address("f", 1)
        server = net.bind(addr, FileServer())
        conn = net.connect(addr)
        reference = ByteBuffer()
        for offset, data in writes:
            conn.expect("write", data, path="f", offset=offset)
            reference.write_at(offset, data)
        assert server.get_file("f") == reference.getvalue()
