"""Concurrency and accounting tests for the network fabric."""

import threading

import pytest

from repro.net import Address, FileServer, KeyValueStore, Network
from repro.net.message import Request, Response, encoded_size


class TestServiceSerialization:
    def test_concurrent_callers_do_not_corrupt_service(self):
        network = Network()
        address = Address("db", 1)
        store = network.bind(address, KeyValueStore({"hits": b"0"}))
        errors = []

        def hammer():
            try:
                connection = network.connect(address)
                for _ in range(100):
                    current = int(connection.expect("get", key="hits").payload)
                    connection.expect("put", str(current + 1).encode(),
                                      key="hits")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # read-modify-write races lose increments (that's the clients'
        # problem — cas exists for them) but the store itself must have
        # a coherent final value and consistent version counters
        final = int(store._records["hits"].value)
        assert 100 <= final <= 400
        assert store.store_version >= 400

    def test_cas_makes_concurrent_increments_exact(self):
        network = Network()
        address = Address("db", 1)
        network.bind(address, KeyValueStore({"n": b"0"}))
        errors = []

        def incr():
            try:
                connection = network.connect(address)
                done = 0
                while done < 50:
                    response = connection.expect("get", key="n")
                    version = response.fields["version"]
                    attempt = connection.call(
                        "cas", str(int(response.payload) + 1).encode(),
                        key="n", expected_version=version)
                    if attempt.ok:
                        done += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=incr) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        final = network.connect(address).expect("get", key="n").payload
        assert final == b"150"

    def test_stats_are_consistent_under_concurrency(self):
        network = Network()
        address = Address("f", 1)
        network.bind(address, FileServer({"x": b"y"}))

        def reader():
            connection = network.connect(address)
            for _ in range(50):
                connection.expect("read", path="x", offset=0, size=1)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert network.stats.requests == 200
        assert network.stats.per_service[str(address)] == 200


class TestWireAccounting:
    def test_encoded_size_includes_header_budget(self):
        size = encoded_size({"op": "x"}, b"12345")
        assert size > 5 + 60  # payload + fixed wire header

    def test_request_and_response_wire_sizes(self):
        request = Request(op="read", fields={"path": "a"}, payload=b"")
        response = Response(payload=b"x" * 100)
        assert request.wire_size() < response.wire_size()

    def test_clock_advances_exactly_once_per_direction(self):
        from repro.net import LinkProfile

        profile = LinkProfile(latency_us=10.0, bandwidth_mbps=1e12)
        network = Network(profile=profile)
        address = Address("f", 1)
        network.bind(address, FileServer({"x": b"y"}))
        before = network.clock.now_us()
        network.connect(address).expect("read", path="x", offset=0, size=1)
        elapsed = network.clock.now_us() - before
        # ~zero serialization at absurd bandwidth: two latencies remain
        assert elapsed == pytest.approx(20.0, abs=0.5)

    def test_failure_responses_still_charged(self):
        network = Network()
        address = Address("f", 1)
        network.bind(address, FileServer())
        before = network.clock.now_us()
        response = network.connect(address).call("read", path="ghost",
                                                 offset=0, size=1)
        assert not response.ok
        assert network.clock.now_us() > before
        assert network.stats.requests == 1
