"""Tests for the mailbox and distribution sentinels."""

import pytest

from repro.core import Container, open_active
from repro.net import (
    Address,
    KeyValueStore,
    Network,
    Pop3Server,
    SmtpServer,
)
from repro.net.pop3 import MailMessage

INBOX = "repro.sentinels.mailbox:InboxSentinel"
OUTBOX = "repro.sentinels.mailbox:OutboxSentinel"
DISTRIBUTE = "repro.sentinels.distribute:DistributionSentinel"


@pytest.fixture
def mail_world(network):
    pop_a = network.bind(Address("pop.one", 110), Pop3Server({"carol": "pw1"}))
    pop_b = network.bind(Address("pop.two", 110), Pop3Server({"carol": "pw2"}))
    smtp = network.bind(Address("smtp.out", 25), SmtpServer())
    smtp.register_domain("one.example", pop_a)
    return network, pop_a, pop_b, smtp


class TestInbox:
    def test_aggregates_multiple_pop_servers(self, mail_world, make_active):
        network, pop_a, pop_b, _ = mail_world
        pop_a.deliver(MailMessage("x@y", "carol@one.example", "first", "b1"))
        pop_b.deliver(MailMessage("z@w", "carol@two.example", "second", "b2"))
        path = make_active(INBOX, params={"accounts": [
            {"address": "pop.one:110", "user": "carol", "password": "pw1"},
            {"address": "pop.two:110", "user": "carol", "password": "pw2"},
        ]}, meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            text = stream.read().decode()
        assert "Subject: first" in text
        assert "Subject: second" in text
        assert text.count("From carol@") == 2

    def test_reopen_fetches_new_mail(self, mail_world, make_active):
        network, pop_a, _, _ = mail_world
        path = make_active(INBOX, params={"accounts": [
            {"address": "pop.one:110", "user": "carol", "password": "pw1"},
        ]}, meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() == b""
        pop_a.deliver(MailMessage("a@b", "carol@one.example", "late", "body"))
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert b"Subject: late" in stream.read()

    def test_delete_after_fetch(self, mail_world, make_active):
        network, pop_a, _, _ = mail_world
        pop_a.deliver(MailMessage("a@b", "carol@one.example", "s", "b"))
        path = make_active(INBOX, params={
            "accounts": [{"address": "pop.one:110", "user": "carol",
                          "password": "pw1"}],
            "delete_after_fetch": True,
        }, meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert b"Subject: s" in stream.read()
        assert pop_a.message_count("carol") == 0

    def test_fetch_control_op(self, mail_world, make_active):
        network, pop_a, _, _ = mail_world
        path = make_active(INBOX, params={"accounts": [
            {"address": "pop.one:110", "user": "carol", "password": "pw1"},
        ]}, meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            pop_a.deliver(MailMessage("a@b", "carol@one.example", "mid", "b"))
            fields, _ = stream.control("fetch")
            assert fields["fetched"] == 1

    def test_no_accounts_rejected(self, make_active):
        from repro.errors import SpecError

        path = make_active(INBOX, params={"accounts": []})
        with pytest.raises(SpecError):
            open_active(path, "rb", strategy="inproc")


class TestOutbox:
    def test_send_on_close_with_to_header(self, mail_world, make_active):
        network, pop_a, _, smtp = mail_world
        path = make_active(OUTBOX, params={"smtp": "smtp.out:25",
                                           "sender": "me@laptop"},
                           meta={"data": "memory"})
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.write(b"To: carol@one.example\n"
                         b"Subject: via outbox\n\nhello carol\n")
        assert pop_a.message_count("carol") == 1
        assert smtp.sent[-1].subject == "via outbox"

    def test_multiple_recipients_parsed(self, mail_world, make_active):
        network, pop_a, _, smtp = mail_world
        path = make_active(OUTBOX, params={"smtp": "smtp.out:25",
                                           "sender": "me@x"},
                           meta={"data": "memory"})
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.write(b"To: carol@one.example, other@far.away\n"
                         b"Subject: multi\n\nbody")
        assert pop_a.message_count("carol") == 1
        assert {m.recipient for m in smtp.sent} == \
            {"carol@one.example", "other@far.away"}

    def test_default_recipients(self, mail_world, make_active):
        network, pop_a, _, _ = mail_world
        path = make_active(OUTBOX, params={
            "smtp": "smtp.out:25", "sender": "me@x",
            "recipients": ["carol@one.example"],
        }, meta={"data": "memory"})
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.write(b"Subject: no to header\n\nbody")
        assert pop_a.message_count("carol") == 1

    def test_empty_outbox_sends_nothing(self, mail_world, make_active):
        network, _, _, smtp = mail_world
        path = make_active(OUTBOX, params={"smtp": "smtp.out:25"},
                           meta={"data": "memory"})
        with open_active(path, "r+b", strategy="inproc", network=network):
            pass
        assert smtp.sent == []

    def test_flush_sends_and_clears(self, mail_world, make_active):
        network, pop_a, _, _ = mail_world
        path = make_active(OUTBOX, params={
            "smtp": "smtp.out:25", "recipients": ["carol@one.example"],
        }, meta={"data": "memory"})
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.write(b"Subject: one\n\nfirst")
            stream.flush()
            assert pop_a.message_count("carol") == 1
            assert stream.getsize() == 0  # buffer cleared after send

    def test_no_recipients_anywhere_raises(self, mail_world, make_active):
        from repro.errors import SentinelError

        network, _, _, _ = mail_world
        path = make_active(OUTBOX, params={"smtp": "smtp.out:25"},
                           meta={"data": "memory"})
        stream = open_active(path, "r+b", strategy="inproc", network=network)
        stream.write(b"Subject: orphan\n\nbody")
        with pytest.raises(SentinelError):
            stream.close()

    def test_legacy_mail_client_via_interception(self, mail_world,
                                                 make_active):
        """An unmodified 'mail client' that just writes a text file."""
        from repro.core import MediatingConnector

        network, pop_a, _, _ = mail_world
        path = make_active(OUTBOX, params={"smtp": "smtp.out:25",
                                           "sender": "legacy@app"},
                           meta={"data": "memory"})
        with MediatingConnector(network=network, strategy="inproc"):
            with open(path, "w") as stream:  # plain text file API
                stream.write("To: carol@one.example\nSubject: legacy\n\nhi")
        assert pop_a.message_count("carol") == 1


class TestDistribution:
    def test_tee_to_fileserver_and_local(self, network, fileserver,
                                         make_active, tmp_path):
        local = tmp_path / "copy.log"
        path = make_active(DISTRIBUTE, params={"targets": [
            {"kind": "fileserver", "address": "files.test:7000",
             "path": "mirror.log"},
            {"kind": "local", "path": str(local)},
        ]})
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.write(b"event-1\n")
            stream.write(b"event-2\n")
        assert fileserver.get_file("mirror.log") == b"event-1\nevent-2\n"
        assert local.read_bytes() == b"event-1\nevent-2\n"
        assert Container.load(path).data == b"event-1\nevent-2\n"

    def test_kv_target_stores_latest(self, network, make_active):
        store = network.bind(Address("db", 1), KeyValueStore())
        path = make_active(DISTRIBUTE, params={"targets": [
            {"kind": "kv", "address": "db:1", "key": "latest"},
        ]})
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.write(b"v1")
            stream.write(b"v2")
        from repro.net.message import Request

        assert store.op_get(Request(op="get",
                                    fields={"key": "latest"})).payload == b"v2"

    def test_reads_serve_local_record(self, network, fileserver, make_active):
        path = make_active(DISTRIBUTE, params={"targets": [
            {"kind": "fileserver", "address": "files.test:7000", "path": "m"},
        ]})
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.write(b"logged")
            stream.seek(0)
            assert stream.read() == b"logged"

    def test_stats_control(self, network, fileserver, make_active):
        path = make_active(DISTRIBUTE, params={"targets": [
            {"kind": "fileserver", "address": "files.test:7000", "path": "m"},
        ]})
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.write(b"a")
            stream.write(b"b")
            fields, _ = stream.control("stats")
            assert fields == {"distributed_writes": 2, "failed_legs": 0,
                              "targets": 1}

    def test_unknown_target_kind_rejected(self, make_active):
        from repro.errors import SpecError

        path = make_active(DISTRIBUTE, params={"targets": [
            {"kind": "pigeon"},
        ]})
        with pytest.raises(SpecError):
            open_active(path, "rb", strategy="inproc")

    def test_no_targets_rejected(self, make_active):
        from repro.errors import SpecError

        path = make_active(DISTRIBUTE, params={"targets": []})
        with pytest.raises(SpecError):
            open_active(path, "rb", strategy="inproc")
