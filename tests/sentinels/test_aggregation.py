"""Tests for aggregation-family sentinels: aggregate, quotes, registry view."""

import pytest

from repro.core import open_active
from repro.errors import UnsupportedOperationError
from repro.net import Address, HttpServer, KeyValueStore, Network, QuoteServer, RegistryServer

AGGREGATE = "repro.sentinels.aggregate:AggregateSentinel"
QUOTES = "repro.sentinels.quotes:StockQuoteSentinel"
REGISTRY = "repro.sentinels.registryfs:RegistryFileSentinel"


class TestAggregate:
    def test_literal_sources(self, network, make_active):
        path = make_active(AGGREGATE, params={"sources": [
            {"kind": "literal", "text": "alpha\n"},
            {"kind": "literal", "text": "beta\n"},
        ]}, meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() == b"alpha\nbeta\n"

    def test_separator(self, network, make_active):
        path = make_active(AGGREGATE, params={"sources": [
            {"kind": "literal", "text": "a"},
            {"kind": "literal", "text": "b"},
        ], "separator": "--"}, meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() == b"a--b"

    def test_headers(self, network, make_active):
        path = make_active(AGGREGATE, params={"sources": [
            {"kind": "literal", "text": "x\n"},
        ], "headers": True}, meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() == b"== literal ==\nx\n"

    def test_mixed_remote_sources(self, network, fileserver, make_active,
                                  tmp_path):
        fileserver.put_file("part1", b"from fileserver|")
        network.bind(Address("web", 80), HttpServer({"/part2": b"from http|"}))
        network.bind(Address("db", 5432),
                     KeyValueStore({"row1": b"from db"}))
        local = tmp_path / "part0.txt"
        local.write_bytes(b"from local|")
        path = make_active(AGGREGATE, params={"sources": [
            {"kind": "local", "path": str(local)},
            {"kind": "fileserver", "address": "files.test:7000", "path": "part1"},
            {"kind": "http", "address": "web:80", "path": "/part2"},
            {"kind": "kv", "address": "db:5432", "keys": ["row1"]},
        ]}, meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() == b"from local|from fileserver|from http|from db"

    def test_reopen_sees_source_changes(self, network, fileserver, make_active):
        """The anti-intermediary property: no decoupling from sources."""
        fileserver.put_file("live", b"version 1")
        path = make_active(AGGREGATE, params={"sources": [
            {"kind": "fileserver", "address": "files.test:7000", "path": "live"},
        ]}, meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() == b"version 1"
        fileserver.put_file("live", b"version 2")
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() == b"version 2"

    def test_refresh_control_op(self, network, fileserver, make_active):
        fileserver.put_file("live", b"old")
        path = make_active(AGGREGATE, params={"sources": [
            {"kind": "fileserver", "address": "files.test:7000", "path": "live"},
        ]}, meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() == b"old"
            fileserver.put_file("live", b"new!")
            stream.control("refresh")
            stream.seek(0)
            assert stream.read() == b"new!"

    def test_read_only(self, network, make_active):
        path = make_active(AGGREGATE, params={"sources": [
            {"kind": "literal", "text": "x"},
        ]}, meta={"data": "memory"})
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            with pytest.raises(UnsupportedOperationError):
                stream.write(b"nope")

    def test_no_sources_rejected(self, make_active):
        from repro.errors import SpecError

        path = make_active(AGGREGATE, params={"sources": []})
        with pytest.raises(SpecError):
            open_active(path, "rb", strategy="inproc")

    def test_unknown_kind_fails_at_open(self, network, make_active):
        from repro.errors import SentinelError

        path = make_active(AGGREGATE, params={"sources": [
            {"kind": "telepathy"},
        ]}, meta={"data": "memory"})
        with pytest.raises(SentinelError):
            open_active(path, "rb", strategy="inproc", network=network)


class TestQuotes:
    @pytest.fixture
    def quoted(self, network, make_active):
        server = network.bind(Address("quotes", 7),
                              QuoteServer({"ACME": 101.5, "GLOBEX": 42.0}))
        path = make_active(QUOTES, params={"address": "quotes:7"},
                           meta={"data": "memory"})
        return network, server, path

    def test_snapshot_on_open(self, quoted):
        network, _, path = quoted
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() == b"ACME\t101.5\nGLOBEX\t42.0\n"

    def test_reopen_reflects_latest(self, quoted):
        """Paper: latest quotes every time the file is opened."""
        network, server, path = quoted
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            first = stream.read()
        server.tick(3)
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() != first

    def test_symbol_filter(self, network, make_active):
        network.bind(Address("q2", 7), QuoteServer({"A": 1.0, "B": 2.0}))
        path = make_active(QUOTES, params={"address": "q2:7",
                                           "symbols": ["B"]},
                           meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() == b"B\t2.0\n"

    def test_csv_format(self, network, make_active):
        network.bind(Address("q3", 7), QuoteServer({"A": 1.0}))
        path = make_active(QUOTES, params={"address": "q3:7",
                                           "format": "csv"},
                           meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() == b"symbol,price\nA,1.0\n"

    def test_refresh_mid_open(self, quoted):
        network, server, path = quoted
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            g0 = stream.read()
            server.tick()
            fields, _ = stream.control("refresh")
            assert fields["generation"] >= 1
            stream.seek(0)
            assert stream.read() != g0

    def test_read_only(self, quoted):
        network, _, path = quoted
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            with pytest.raises(UnsupportedOperationError):
                stream.write(b"x")

    def test_bad_format_rejected(self, make_active):
        from repro.errors import SpecError

        path = make_active(QUOTES, params={"address": "a:1",
                                           "format": "xml"})
        with pytest.raises(SpecError):
            open_active(path, "rb", strategy="inproc")


class TestRegistryFile:
    @pytest.fixture
    def registry(self, network, make_active):
        server = network.bind(Address("reg", 1), RegistryServer())
        server.set_value(r"HKLM\Software\App", "Version", "1.0")
        server.set_value(r"HKLM\Software\App", "Port", 8080, "REG_DWORD")
        path = make_active(REGISTRY, params={"registry": "reg:1",
                                             "key": "HKLM"},
                           meta={"data": "memory"})
        return network, server, path

    def test_rendered_view(self, registry):
        network, _, path = registry
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            text = stream.read().decode()
        assert "[Software\\App]" in text
        assert "Port = REG_DWORD:8080" in text
        assert "Version = REG_SZ:1.0" in text

    def test_edit_writes_back(self, registry):
        """Paper: modifications parsed and translated into registry ops."""
        network, server, path = registry
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            text = stream.read().decode()
            edited = text.replace("REG_DWORD:8080", "REG_DWORD:9090")
            stream.seek(0)
            stream.truncate(0)
            stream.write(edited.encode())
        assert server.get_value(r"HKLM\Software\App", "Port") == ("REG_DWORD", 9090)

    def test_adding_value(self, registry):
        network, server, path = registry
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.seek(stream.getsize())
            stream.write(b"[Software\\App]\nTheme = REG_SZ:dark\n")
        assert server.get_value(r"HKLM\Software\App", "Theme") == ("REG_SZ", "dark")

    def test_removing_value_deletes(self, registry):
        network, server, path = registry
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            text = stream.read().decode()
            edited = "\n".join(line for line in text.splitlines()
                               if not line.startswith("Version")) + "\n"
            stream.seek(0)
            stream.truncate(0)
            stream.write(edited.encode())
        with pytest.raises(KeyError):
            server.get_value(r"HKLM\Software\App", "Version")

    def test_unchanged_close_sends_nothing(self, registry):
        network, server, path = registry
        before = server.change_count
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            stream.read()
        assert server.change_count == before

    def test_read_only_param(self, network, make_active):
        server = network.bind(Address("reg2", 1), RegistryServer())
        server.set_value("HKLM", "k", "v")
        path = make_active(REGISTRY, params={"registry": "reg2:1",
                                             "key": "", "read_only": True},
                           meta={"data": "memory"})
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            with pytest.raises(UnsupportedOperationError):
                stream.write(b"x")

    def test_malformed_edit_raises_on_close(self, registry):
        from repro.errors import SentinelError

        network, _, path = registry
        stream = open_active(path, "r+b", strategy="inproc", network=network)
        stream.seek(0)
        stream.truncate(0)
        stream.write(b"value before any section header\n")
        with pytest.raises(SentinelError):
            stream.close()


class TestRegistryTextHelpers:
    def test_parse_render_roundtrip(self):
        from repro.sentinels.registryfs import parse_registry, render_registry

        tree = {
            "values": {"Root": {"type": "REG_SZ", "data": "r"}},
            "subkeys": {
                "Sub": {"values": {"N": {"type": "REG_DWORD", "data": 5}},
                        "subkeys": {}},
            },
        }
        text = render_registry(tree)
        parsed = parse_registry(text)
        assert parsed[("", "Root")] == ("REG_SZ", "r")
        assert parsed[("Sub", "N")] == ("REG_DWORD", "5")

    def test_parse_ignores_comments_and_blanks(self):
        from repro.sentinels.registryfs import parse_registry

        parsed = parse_registry("; comment\n\n[K]\n# another\nA = REG_SZ:1\n")
        assert parsed == {("K", "A"): ("REG_SZ", "1")}

    def test_parse_default_type(self):
        from repro.sentinels.registryfs import parse_registry

        parsed = parse_registry("[K]\nA = bare value\n")
        assert parsed[("K", "A")] == ("REG_SZ", "bare value")

    def test_parse_rejects_valueless_line(self):
        from repro.errors import SentinelError
        from repro.sentinels.registryfs import parse_registry

        with pytest.raises(SentinelError):
            parse_registry("[K]\njust some words\n")
