"""Tests for sentinel pipelines (§3 composition)."""

import pytest

from repro.core import Container, create_active, open_active
from repro.core.spec import SentinelSpec
from repro.errors import SpecError, UnsupportedOperationError
from repro.net import Address, FileServer, Network
from repro.sentinels.compose import PipelineSentinel, pipeline_spec

NULL = SentinelSpec("repro.sentinels.null:NullFilterSentinel")
COMPRESS = SentinelSpec("repro.sentinels.compress:CompressionSentinel",
                        {"chunk_size": 64})


def cipher(key="k"):
    return SentinelSpec("repro.sentinels.cipher:XorCipherSentinel",
                        {"key": key})


class TestPipelineBasics:
    def test_needs_two_stages(self):
        with pytest.raises(SpecError):
            pipeline_spec(NULL)
        with pytest.raises(SpecError):
            PipelineSentinel({"stages": [NULL.to_dict()]})

    def test_null_over_null_is_passive(self, tmp_path):
        path = tmp_path / "p.af"
        create_active(path, pipeline_spec(NULL, NULL), data=b"plain")
        with open_active(path, "r+b", strategy="inproc") as stream:
            assert stream.read() == b"plain"
            stream.seek(0)
            stream.write(b"PLAIN")
        assert Container.load(path).data == b"PLAIN"

    def test_stage_introspection(self, tmp_path):
        path = tmp_path / "p.af"
        create_active(path, pipeline_spec(cipher(), COMPRESS))
        with open_active(path, "rb", strategy="inproc") as stream:
            fields, _ = stream.control("pipeline_stages")
            assert fields["stages"] == ["XorCipherSentinel",
                                        "CompressionSentinel"]


class TestCompressOverCipher:
    """Compressed-then-encrypted file: compression sees plaintext (so it
    actually compresses), the cipher sees the compressed container, and
    the disk sees only ciphertext.  Neither stage knows about the other."""

    @pytest.fixture
    def path(self, tmp_path):
        path = tmp_path / "vault.af"
        create_active(path, pipeline_spec(COMPRESS, cipher("s3cret")))
        return str(path)

    def test_roundtrip(self, path):
        body = b"highly repetitive secret " * 40
        with open_active(path, "wb", strategy="inproc") as stream:
            stream.write(body)
        with open_active(path, "rb", strategy="inproc") as stream:
            assert stream.read() == body

    def test_on_disk_form_is_encrypted_and_smaller(self, path):
        body = b"A" * 5000
        with open_active(path, "wb", strategy="inproc") as stream:
            stream.write(body)
        stored = Container.load(path).data
        assert stored[:4] != b"AFZ1"       # the container is encrypted
        assert body not in stored           # and nothing readable
        assert len(stored) < len(body)      # but compression still won

    def test_random_access_through_both_stages(self, path):
        body = bytes(range(256)) * 8
        with open_active(path, "wb", strategy="inproc") as stream:
            stream.write(body)
        with open_active(path, "rb", strategy="thread") as stream:
            stream.seek(1000)
            assert stream.read(40) == body[1000:1040]
            assert stream.getsize() == len(body)

    def test_stage_scoped_control_op(self, path):
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"z" * 1000)
            stream.flush()
            fields, _ = stream.control("ratio", {"stage": 0})
            assert fields["raw_size"] == 1000

    def test_unrouted_control_op(self, path):
        with open_active(path, "rb", strategy="inproc") as stream:
            with pytest.raises(UnsupportedOperationError,
                               match="no pipeline stage"):
                stream.control("teleport")


class TestCipherOverRemote:
    """Client-side encryption: the server only sees ciphertext."""

    def test_server_never_sees_plaintext(self, tmp_path):
        network = Network()
        server = network.bind(Address("files", 1), FileServer({"doc": b""}))
        remote = SentinelSpec(
            "repro.sentinels.remotefile:RemoteFileSentinel",
            {"address": "files:1", "path": "doc"},
        )
        path = tmp_path / "secure.af"
        create_active(path, pipeline_spec(cipher("clientkey"), remote),
                      meta={"data": "memory"})
        secret = b"the merger closes friday"
        with open_active(path, "r+b", strategy="inproc",
                         network=network) as stream:
            stream.write(secret)
        stored = server.get_file("doc")
        assert stored != secret
        assert secret not in stored
        # a fresh open decrypts what the server stored
        with open_active(path, "rb", strategy="inproc",
                         network=network) as stream:
            assert stream.read(len(secret)) == secret

    def test_audit_over_remote(self, tmp_path):
        import json

        network = Network()
        network.bind(Address("files", 1), FileServer({"doc": b"watched"}))
        trail = tmp_path / "trail.jsonl"
        audit = SentinelSpec("repro.sentinels.audit:AuditSentinel",
                             {"audit_path": str(trail)})
        remote = SentinelSpec(
            "repro.sentinels.remotefile:RemoteFileSentinel",
            {"address": "files:1", "path": "doc"},
        )
        path = tmp_path / "audited.af"
        create_active(path, pipeline_spec(audit, remote),
                      meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc",
                         network=network) as stream:
            assert stream.read(7) == b"watched"
        events = [json.loads(line)["event"]
                  for line in trail.read_text().splitlines()]
        assert "read" in events


class TestThreeStagePipeline:
    def test_audit_cipher_compress(self, tmp_path):
        import json

        trail = tmp_path / "t.jsonl"
        audit = SentinelSpec("repro.sentinels.audit:AuditSentinel",
                             {"audit_path": str(trail)})
        path = tmp_path / "deep.af"
        create_active(path, pipeline_spec(audit, cipher(), COMPRESS))
        body = b"three layers deep " * 30
        with open_active(path, "wb", strategy="inproc") as stream:
            stream.write(body)
        with open_active(path, "rb", strategy="inproc") as stream:
            assert stream.read() == body
        stored = Container.load(path).data
        assert stored[:4] == b"AFZ1"
        assert b"three layers" not in stored
        assert trail.exists()

    def test_pipeline_under_child_process(self, tmp_path):
        path = tmp_path / "p.af"
        create_active(path, pipeline_spec(cipher(), COMPRESS))
        with open_active(path, "wb", strategy="process-control") as stream:
            stream.write(b"crossing the process boundary")
        with open_active(path, "rb", strategy="process-control") as stream:
            assert stream.read() == b"crossing the process boundary"


class TestPipelineProperties:
    """Property: any stack of reversible filters is an identity filter."""

    from hypothesis import HealthCheck, given, settings, strategies as st

    stage_strategy = st.sampled_from(["null", "cipher-a", "cipher-b",
                                      "compress"])

    @staticmethod
    def _stage_spec(kind):
        if kind == "null":
            return NULL
        if kind == "cipher-a":
            return cipher("alpha")
        if kind == "cipher-b":
            return cipher("beta")
        return COMPRESS

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(kinds=st.lists(stage_strategy, min_size=2, max_size=4),
           body=st.binary(min_size=1, max_size=400))
    def test_random_filter_stacks_roundtrip(self, tmp_path, kinds, body):
        spec = pipeline_spec(*[self._stage_spec(kind) for kind in kinds])
        path = tmp_path / f"stack-{'-'.join(kinds)}-{len(body)}.af"
        create_active(path, spec, exist_ok=True)
        with open_active(str(path), "w+b", strategy="inproc") as stream:
            stream.write(body)
            stream.seek(0)
            assert stream.read() == body
        # and across a fresh open (persistence through every stage)
        with open_active(str(path), "rb", strategy="inproc") as stream:
            assert stream.read() == body
