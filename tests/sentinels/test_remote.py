"""Tests for the remote-file proxy sentinel and its caching paths."""

import pytest

from repro.core import open_active
from repro.net import Address, FtpServer, HttpServer, Network
from repro.net.ftpd import FtpAccount

REMOTE = "repro.sentinels.remotefile:RemoteFileSentinel"


@pytest.fixture
def remote_setup(network, fileserver, make_active):
    fileserver.put_file("data/report.txt", b"remote report contents")

    def make(cache="none", meta=None, **extra):
        params = {"address": "files.test:7000", "path": "data/report.txt",
                  "cache": cache, **extra}
        return make_active(REMOTE, params=params,
                           meta={"data": "memory", **(meta or {})})

    return network, fileserver, make


@pytest.mark.parametrize("cache", ["none", "disk", "memory"])
class TestCachePaths:
    """All three Figure 5 paths serve identical bytes."""

    def test_read(self, remote_setup, cache):
        network, _, make = remote_setup
        path = make(cache)
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() == b"remote report contents"

    def test_write_reaches_origin(self, remote_setup, cache):
        network, server, make = remote_setup
        path = make(cache)
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.write(b"REMOTE")
        assert server.get_file("data/report.txt") == b"REMOTE report contents"

    def test_getsize_is_remote_size(self, remote_setup, cache):
        network, _, make = remote_setup
        path = make(cache)
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.getsize() == 22


class TestCacheBehaviour:
    def test_no_cache_hits_origin_every_read(self, remote_setup):
        network, _, make = remote_setup
        path = make("none")
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            before = network.stats.requests
            stream.read(4)
            stream.seek(0)
            stream.read(4)
            assert network.stats.requests - before == 2

    def test_memory_cache_absorbs_repeat_reads(self, remote_setup):
        network, _, make = remote_setup
        path = make("memory", block_size=64)
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            stream.read(4)
            before = network.stats.requests
            stream.seek(0)
            stream.read(4)
            assert network.stats.requests == before

    def test_cache_stats_control_op(self, remote_setup):
        network, _, make = remote_setup
        path = make("memory", block_size=8)
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            stream.read(16)
            stream.seek(0)
            stream.read(16)
            fields, _ = stream.control("cache_stats")
            assert fields["cache"] == "memory"
            assert fields["hits"] >= 2
            assert fields["blocks"] == 2

    def test_disk_cache_lands_in_data_part(self, remote_setup, make_active):
        from repro.core import Container, create_active

        network, _, _ = remote_setup
        # disk cache needs a container-backed data part
        import tempfile, os

        d = tempfile.mkdtemp()
        path = os.path.join(d, "cached.af")
        create_active(path, REMOTE,
                      params={"address": "files.test:7000",
                              "path": "data/report.txt", "cache": "disk"})
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.read(10)
        # the fetched blocks persisted into the container's data segment
        assert b"remote rep" in Container.load(path).data

    def test_validate_invalidation_on_remote_change(self, remote_setup):
        network, server, make = remote_setup
        path = make("memory", validate=True)
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read(6) == b"remote"
            server.put_file("data/report.txt", b"UPDATE report contents")
            stream.seek(0)
            assert stream.read(6) == b"UPDATE"

    def test_stale_without_validation(self, remote_setup):
        network, server, make = remote_setup
        path = make("memory", validate=False)
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read(6) == b"remote"
            server.put_file("data/report.txt", b"UPDATE report contents")
            stream.seek(0)
            assert stream.read(6) == b"remote"  # cache is stale, as configured
            stream.control("invalidate")
            stream.seek(0)
            assert stream.read(6) == b"UPDATE"

    def test_truncate_propagates(self, remote_setup):
        network, server, make = remote_setup
        path = make("memory")
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.truncate(6)
        assert server.get_file("data/report.txt") == b"remote"


class TestProtocols:
    def test_http_origin(self, network, make_active):
        network.bind(Address("web", 80),
                     HttpServer({"/doc.html": b"<p>hello</p>"}))
        path = make_active(REMOTE, params={"address": "web:80",
                                           "path": "/doc.html",
                                           "protocol": "http"},
                           meta={"data": "memory"})
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            assert stream.read() == b"<p>hello</p>"
            stream.seek(3)
            stream.write(b"HELLO")
        server = network._services[Address("web", 80)].service
        assert server.op_GET(__import__("repro.net.message", fromlist=["Request"])
                             .Request(op="GET", fields={"path": "/doc.html"})
                             ).payload == b"<p>HELLO</p>"

    def test_ftp_origin_with_auth(self, network, make_active):
        accounts = {"bob": FtpAccount(password="pw", read_prefixes=("pub/",),
                                      write_prefixes=("pub/",))}
        network.bind(Address("ftp.host", 21),
                     FtpServer(accounts, files={"pub/f.txt": b"ftp body"}))
        path = make_active(REMOTE, params={"address": "ftp.host:21",
                                           "path": "pub/f.txt",
                                           "protocol": "ftp",
                                           "user": "bob", "password": "pw"},
                           meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            assert stream.read() == b"ftp body"
            assert stream.getsize() == 8

    def test_ftp_bad_credentials(self, network, make_active):
        from repro.errors import NetworkError, SentinelError

        network.bind(Address("ftp.host", 21),
                     FtpServer({"bob": FtpAccount(password="pw")}))
        path = make_active(REMOTE, params={"address": "ftp.host:21",
                                           "path": "x", "protocol": "ftp",
                                           "user": "bob",
                                           "password": "WRONG"},
                           meta={"data": "memory"})
        with pytest.raises((NetworkError, SentinelError)):
            open_active(path, "rb", strategy="inproc", network=network)

    def test_missing_remote_file(self, network, fileserver, make_active):
        from repro.errors import RemoteFileNotFound

        path = make_active(REMOTE, params={"address": "files.test:7000",
                                           "path": "ghost.txt"},
                           meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            with pytest.raises(RemoteFileNotFound):
                stream.getsize()

    def test_unknown_protocol_rejected(self, make_active):
        from repro.errors import SpecError

        path = make_active(REMOTE, params={"address": "a:1", "path": "p",
                                           "protocol": "gopher"})
        with pytest.raises(SpecError):
            open_active(path, "rb", strategy="inproc")

    def test_unknown_cache_rejected(self, make_active):
        from repro.errors import SpecError

        path = make_active(REMOTE, params={"address": "a:1", "path": "p",
                                           "cache": "quantum"})
        with pytest.raises(SpecError):
            open_active(path, "rb", strategy="inproc")

    def test_missing_params_rejected(self, make_active):
        from repro.errors import SpecError

        path = make_active(REMOTE, params={"path": "p"})
        with pytest.raises(SpecError):
            open_active(path, "rb", strategy="inproc")


class TestAcrossProcessBoundary:
    """The sentinel child reaches origin services through the bridge."""

    def test_remote_read_via_child_process(self, remote_setup):
        network, _, make = remote_setup
        path = make("none")
        with open_active(path, "rb", strategy="process-control",
                         network=network) as stream:
            assert stream.read() == b"remote report contents"

    def test_remote_write_via_child_process(self, remote_setup):
        network, server, make = remote_setup
        path = make("none")
        with open_active(path, "r+b", strategy="process-control",
                         network=network) as stream:
            stream.write(b"CHILD!")
        assert server.get_file("data/report.txt").startswith(b"CHILD!")

    def test_partition_surfaces_as_sentinel_error(self, remote_setup):
        from repro.errors import SentinelError

        network, _, make = remote_setup
        path = make("none")
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            network.partition(Address("files.test", 7000))
            with pytest.raises(Exception):
                stream.read(4)
            network.heal(Address("files.test", 7000))
            stream.seek(0)
            assert stream.read(6) == b"remote"


class TestPipelinedCache:
    """Read-ahead and write-behind riding the multiplexed channel."""

    def test_readahead_prefetches_sequential_scan(self, remote_setup):
        network, server, make = remote_setup
        server.put_file("data/big.bin", bytes(range(256)) * 16)  # 4 KiB
        path = make("memory", path="data/big.bin",
                    block_size=256, readahead=8)
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            body = b"".join(stream.read(512) for _ in range(8))
            assert body == bytes(range(256)) * 16
            stats = stream.cache_stats()
            assert stats["prefetch_issued"] > 0
            assert stats["prefetch_used"] > 0
            assert stream.stats.prefetch_issued == stats["prefetch_issued"]

    def test_writeback_buffers_until_flush(self, remote_setup):
        network, server, make = remote_setup
        path = make("memory", writeback=True)
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            before = network.stats.requests
            stream.write(b"BUFFERED")
            assert network.stats.requests == before  # no origin exchange
            assert server.get_file("data/report.txt").startswith(b"remote")
            stream.seek(0)
            assert stream.read(8) == b"BUFFERED"     # reads see the buffer
            stream.flush()
        assert server.get_file("data/report.txt").startswith(b"BUFFERED")

    def test_close_flushes_writeback(self, remote_setup):
        network, server, make = remote_setup
        path = make("memory", writeback=True)
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.write(b"ATCLOSE!")
        assert server.get_file("data/report.txt").startswith(b"ATCLOSE!")

    def test_writeback_coalesces_flush(self, remote_setup):
        network, server, make = remote_setup
        path = make("memory", writeback=True)
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            for i in range(6):
                stream.write(bytes([65 + i]) * 2)
            before = network.stats.requests
            stream.flush()
            # one writev + one stat refresh, not six write exchanges
            assert network.stats.requests - before <= 2
            assert stream.cache_stats()["coalesced_flushes"] == 1
        assert server.get_file("data/report.txt").startswith(b"AABBCCDDEEFF")

    def test_writeback_size_includes_buffered_tail(self, remote_setup):
        network, _, make = remote_setup
        path = make("memory", writeback=True)
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.seek(0, 2)
            stream.write(b"0123456789")
            assert stream.getsize() == 32  # 22 remote + 10 buffered

    def test_truncate_flushes_first(self, remote_setup):
        network, server, make = remote_setup
        path = make("memory", writeback=True)
        with open_active(path, "r+b", strategy="inproc", network=network) as stream:
            stream.write(b"KEEP")
            stream.truncate(4)
        assert server.get_file("data/report.txt") == b"KEEP"

    def test_cache_stats_dash_name(self, remote_setup):
        network, _, make = remote_setup
        path = make("memory", block_size=8)
        with open_active(path, "rb", strategy="inproc", network=network) as stream:
            stream.read(16)
            fields, _ = stream.control("cache-stats")
            assert fields["cache"] == "memory"
            assert fields["misses"] >= 1

    def test_pipelining_requires_cache(self, remote_setup):
        from repro.errors import SpecError

        network, _, make = remote_setup
        for extra in ({"readahead": 4}, {"writeback": True}):
            path = make("none", **extra)
            with pytest.raises(SpecError, match="cache"):
                open_active(path, "rb", strategy="inproc", network=network)


class TestWritebackDurability:
    """Kill the sentinel host mid-stream: flushed bytes survive at the
    origin, and with supervision the buffered ones are *replayed* onto
    the respawned host — never silently dropped, never silently
    'written'."""

    def test_crash_replays_unflushed_writes(self, remote_setup):
        import signal

        network, server, make = remote_setup
        server.put_file("data/report.txt", b"#" * 64)
        path = make("memory", writeback=True, block_size=16)
        stream = open_active(path, "r+b", strategy="process-control",
                             network=network)
        stream.write(b"FLUSHED!")
        stream.flush()
        assert server.get_file("data/report.txt").startswith(b"FLUSHED!")
        stream.seek(32)
        stream.write(b"UNFLUSHED")
        proc = stream.session.host.proc
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=5)
        # The session journal replays every acked write (including the
        # not-yet-flushed one) onto the respawned host before the flush
        # retries: nothing vanishes.
        stream.flush()
        assert stream.session._lease.respawns >= 1
        stream.close()
        body = server.get_file("data/report.txt")
        assert body.startswith(b"FLUSHED!")
        assert body[32:41] == b"UNFLUSHED"

    def test_unsupervised_crash_loses_only_unflushed(self, remote_setup):
        import signal

        from repro.errors import SentinelCrashError

        network, server, make = remote_setup
        server.put_file("data/report.txt", b"#" * 64)
        path = make("memory", writeback=True, block_size=16,
                    meta={"supervise": False})
        stream = open_active(path, "r+b", strategy="process-control",
                             network=network)
        try:
            stream.write(b"FLUSHED!")
            stream.flush()
            assert server.get_file("data/report.txt").startswith(b"FLUSHED!")
            stream.seek(32)
            stream.write(b"UNFLUSHED")
            proc = stream.session.host.proc
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=5)
            with pytest.raises(SentinelCrashError):
                stream.flush()
            body = server.get_file("data/report.txt")
            assert body.startswith(b"FLUSHED!")       # durable
            assert body[32:41] != b"UNFLUSHED"        # lost, but loudly
        finally:
            with pytest.raises(SentinelCrashError):
                stream.close()
