"""Tests for the concurrent-log sentinel."""

import threading

import pytest

from repro.core import Container, open_active

LOG = "repro.sentinels.logfile:ConcurrentLogSentinel"


class TestAppendSemantics:
    def test_writes_become_records(self, make_active):
        path = make_active(LOG)
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"first event\n")
            stream.write(b"second event")
        body = Container.load(path).data
        assert body == b"000000 first event\n000001 second event\n"

    def test_unstamped_mode(self, make_active):
        path = make_active(LOG, params={"stamp": False})
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"raw line")
        assert Container.load(path).data == b"raw line\n"

    def test_sequence_continues_across_opens(self, make_active):
        path = make_active(LOG)
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"a")
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"b")
        records = Container.load(path).data.splitlines()
        assert records == [b"000000 a", b"000001 b"]

    def test_reads_see_whole_log(self, make_active):
        path = make_active(LOG)
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"x")
            stream.seek(0)
            assert stream.read() == b"000000 x\n"


class TestMultiWriter:
    def test_two_sentinels_interleave_without_loss(self, make_active):
        """Paper: several processes log events using the same log file."""
        path = make_active(LOG, params={"stamp": False})
        a = open_active(path, "r+b", strategy="inproc")
        b = open_active(path, "r+b", strategy="thread")
        try:
            a.write(b"from-a-1")
            b.write(b"from-b-1")
            a.write(b"from-a-2")
        finally:
            a.close()
            b.close()
        records = Container.load(path).data.splitlines()
        assert records == [b"from-a-1", b"from-b-1", b"from-a-2"]

    def test_concurrent_threads_lose_nothing(self, make_active):
        path = make_active(LOG, params={"stamp": False})
        errors = []

        def writer(tag):
            try:
                with open_active(path, "r+b", strategy="inproc") as stream:
                    for i in range(20):
                        stream.write(f"{tag}:{i}".encode())
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in ("t1", "t2", "t3")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        records = Container.load(path).data.splitlines()
        assert len(records) == 60
        for tag in ("t1", "t2", "t3"):
            tagged = [r for r in records if r.startswith(tag.encode())]
            assert tagged == [f"{tag}:{i}".encode() for i in range(20)]

    def test_cross_process_writers(self, make_active):
        """Two sentinel child processes appending to one log."""
        path = make_active(LOG, params={"stamp": False})
        a = open_active(path, "r+b", strategy="process-control")
        b = open_active(path, "r+b", strategy="process-control")
        try:
            a.write(b"proc-a")
            b.write(b"proc-b")
            a.write(b"proc-a2")
        finally:
            a.close()
            b.close()
        records = Container.load(path).data.splitlines()
        assert records == [b"proc-a", b"proc-b", b"proc-a2"]


class TestMaintenance:
    def test_auto_compaction(self, make_active):
        path = make_active(LOG, params={"max_records": 5, "keep_records": 3,
                                        "stamp": False})
        with open_active(path, "r+b", strategy="inproc") as stream:
            for i in range(8):
                stream.write(f"r{i}".encode())
        records = Container.load(path).data.splitlines()
        assert len(records) <= 5
        assert records[-1] == b"r7"

    def test_compact_control_op(self, make_active):
        path = make_active(LOG, params={"stamp": False})
        with open_active(path, "r+b", strategy="inproc") as stream:
            for i in range(10):
                stream.write(f"r{i}".encode())
            fields, _ = stream.control("compact", {"keep": 2})
            assert fields["dropped"] == 8
            stream.seek(0)
            assert stream.read() == b"r8\nr9\n"

    def test_compact_to_zero(self, make_active):
        path = make_active(LOG, params={"stamp": False})
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"x")
            fields, _ = stream.control("compact", {"keep": 0})
            assert fields["kept"] == 0
            assert stream.getsize() == 0

    def test_stats(self, make_active):
        path = make_active(LOG)
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"one")
            stream.write(b"two")
            fields, _ = stream.control("stats")
            assert fields["records"] == 2
