"""Coherence-plane equivalence: lease-coherent concurrent opens of one
remote file are indistinguishable from a single plain file.

The hypothesis property drives interleaved writes/publishes/reads
through three process-strategy opens (all members of one coherence
domain in the pooled host child) against a plain ``bytearray`` model —
in both the event-loop host and the ``REPRO_HOST_MODE=threads``
fallback.  The remaining tests pin the plane's failure semantics over
the wire: slow-consumer eviction and the typed distribution/aggregation
fan-out errors."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import create_active, open_active
from repro.errors import (
    AggregationError,
    DistributionError,
    SubscriberEvictedError,
)
from repro.net import Address, FileServer, Network

REMOTE = "repro.sentinels.remotefile:RemoteFileSentinel"

SIZE = 512
OPENS = 3

_op = st.one_of(
    st.tuples(st.just("write"), st.integers(0, OPENS - 1),
              st.integers(0, SIZE - 1), st.binary(min_size=1, max_size=96)),
    st.tuples(st.just("publish"), st.integers(0, OPENS - 1),
              st.integers(0, SIZE - 1), st.binary(min_size=1, max_size=96)),
    st.tuples(st.just("read"), st.integers(0, OPENS - 1),
              st.integers(0, SIZE - 1), st.integers(1, 128)),
    st.tuples(st.just("size"), st.integers(0, OPENS - 1), st.just(0),
              st.just(0)),
)


def _coherent_rig(tmp_path, name="blob.af", **params):
    network = Network()
    server = network.bind(Address("files.chaos", 7000), FileServer())
    base = bytes(range(256)) * (SIZE // 256)
    server.put_file("data/blob.bin", base)
    path = tmp_path / name
    create_active(path, REMOTE,
                  params={"address": "files.chaos:7000",
                          "path": "data/blob.bin", "cache": "memory",
                          "coherent": True, "block_size": 64, **params},
                  meta={"data": "memory"})
    return network, server, str(path), base


@pytest.mark.parametrize("host_mode", ["loop", "threads"])
class TestCoherentOpensEquivalentToPlainFile:
    def test_interleaved_ops_match_bytearray_model(self, tmp_path,
                                                   monkeypatch, host_mode):
        monkeypatch.setenv("REPRO_HOST_MODE", host_mode)
        network, server, path, base = _coherent_rig(tmp_path)
        streams = [open_active(path, "r+b", strategy="process-control",
                               network=network) for _ in range(OPENS)]
        try:
            @settings(max_examples=15, deadline=None)
            @given(ops=st.lists(_op, max_size=10))
            def run(ops):
                streams[0].truncate(SIZE)
                streams[0].seek(0)
                streams[0].write(base)
                model = bytearray(base)
                for kind, who, offset, arg in ops:
                    stream = streams[who]
                    if kind == "write":
                        stream.seek(offset)
                        assert stream.write(arg) == len(arg)
                        model[offset:offset + len(arg)] = arg
                    elif kind == "publish":
                        stream.publish(arg, offset=offset)
                        model[offset:offset + len(arg)] = arg
                    elif kind == "read":
                        stream.seek(offset)
                        assert stream.read(arg) == \
                            bytes(model[offset:offset + arg])
                    elif kind == "size":
                        assert stream.getsize() == len(model)
                for stream in streams:
                    stream.seek(0)
                    assert stream.read() == bytes(model)

            run()
        finally:
            for stream in streams:
                stream.close()

    def test_leased_reads_cost_zero_origin_trips(self, tmp_path,
                                                 monkeypatch, host_mode):
        monkeypatch.setenv("REPRO_HOST_MODE", host_mode)
        network, _, path, base = _coherent_rig(tmp_path)
        a = open_active(path, "r+b", strategy="process-control",
                        network=network)
        b = open_active(path, "rb", strategy="process-control",
                        network=network)
        try:
            assert b.read() == base  # populate the cache under the lease
            before = network.stats.requests
            for _ in range(10):
                b.seek(0)
                assert b.read() == base
            assert network.stats.requests == before
            # a peer write push-installs: still zero origin reads after
            a.seek(0)
            a.write(b"UPDATE!!")
            origin_trips = network.stats.requests
            b.seek(0)
            assert b.read() == b"UPDATE!!" + base[8:]
            assert network.stats.requests == origin_trips
        finally:
            a.close()
            b.close()


class TestEvictionOverTheWire:
    def test_slow_consumer_raises_typed_error_through_session(self, tmp_path):
        network, _, path, _ = _coherent_rig(tmp_path)
        writer = open_active(path, "r+b", strategy="process-control",
                             network=network)
        reader = open_active(path, "rb", strategy="process-control",
                             network=network)
        try:
            sub = reader.subscribe(max_pending=1)
            writer.write(b"a")
            writer.write(b"b")  # overflows the bound: subscriber evicted
            with pytest.raises(SubscriberEvictedError):
                reader.poll(sub)
            fresh = reader.subscribe()
            writer.write(b"c")
            assert len(reader.poll(fresh)) == 1
        finally:
            writer.close()
            reader.close()


class TestFanoutWireErrors:
    def test_distribution_error_names_every_failed_leg(self, tmp_path,
                                                       network):
        network.bind(Address("sink.ok", 7000), FileServer())
        path = tmp_path / "tee.af"
        create_active(path, "repro.sentinels.distribute:DistributionSentinel",
                      params={"targets": [
                          {"kind": "fileserver", "address": "sink.ok:7000",
                           "path": "log"},
                          {"kind": "fileserver", "address": "gone.a:7000",
                           "path": "log"},
                          {"kind": "kv", "address": "gone.b:7000",
                           "key": "k"},
                      ]})
        with open_active(path, "r+b", strategy="process-control",
                         network=network) as stream:
            with pytest.raises(DistributionError) as excinfo:
                stream.write(b"payload")
            message = str(excinfo.value)
            assert "2 distribution leg(s) failed" in message
            assert "gone.a" in message and "gone.b" in message
            assert "sink.ok" not in message

    def test_aggregation_error_names_every_failed_source(self, tmp_path,
                                                         network):
        network.bind(Address("src.ok", 7000),
                     FileServer({"part": b"alive"}))
        path = tmp_path / "agg.af"
        create_active(path, "repro.sentinels.aggregate:AggregateSentinel",
                      params={"sources": [
                          {"kind": "fileserver", "address": "src.ok:7000",
                           "path": "part"},
                          {"kind": "fileserver", "address": "gone.src:7000",
                           "path": "part"},
                      ]})
        with pytest.raises(AggregationError) as excinfo:
            open_active(path, "rb", strategy="process-control",
                        network=network)
        message = str(excinfo.value)
        assert "1 aggregation source(s) failed" in message
        assert "gone.src" in message
