"""Tests for data-generation sentinels."""

import pytest
from hypothesis import given, strategies as st

from repro.core import open_active
from repro.core.datapart import MemoryDataPart
from repro.core.sentinel import SentinelContext
from repro.errors import UnsupportedOperationError
from repro.sentinels.generate import (
    CounterSentinel,
    RandomBytesSentinel,
    SequenceSentinel,
    UNBOUNDED_SIZE,
)

CTX = SentinelContext(data=MemoryDataPart())


class TestRandomBytes:
    def test_deterministic_per_seed(self):
        a = RandomBytesSentinel({"seed": 7})
        b = RandomBytesSentinel({"seed": 7})
        assert a.on_read(CTX, 0, 100) == b.on_read(CTX, 0, 100)

    def test_different_seeds_differ(self):
        a = RandomBytesSentinel({"seed": 1})
        b = RandomBytesSentinel({"seed": 2})
        assert a.on_read(CTX, 0, 64) != b.on_read(CTX, 0, 64)

    def test_offset_consistency(self):
        sentinel = RandomBytesSentinel({"seed": 3})
        whole = sentinel.on_read(CTX, 0, 100)
        assert sentinel.on_read(CTX, 37, 21) == whole[37:58]

    def test_limit(self):
        sentinel = RandomBytesSentinel({"seed": 1, "limit": 10})
        assert len(sentinel.on_read(CTX, 0, 100)) == 10
        assert sentinel.on_read(CTX, 10, 5) == b""
        assert sentinel.on_size(CTX) == 10
        assert not sentinel.endless

    def test_unbounded_size(self):
        assert RandomBytesSentinel().on_size(CTX) == UNBOUNDED_SIZE

    def test_writes_rejected(self):
        with pytest.raises(UnsupportedOperationError):
            RandomBytesSentinel().on_write(CTX, 0, b"x")

    def test_generate_respects_limit(self):
        sentinel = RandomBytesSentinel({"seed": 1, "limit": 10000})
        total = sum(len(chunk) for chunk in sentinel.generate(CTX))
        assert total == 10000

    @given(offset=st.integers(0, 1000), size=st.integers(0, 200))
    def test_property_slices_consistent(self, offset, size):
        sentinel = RandomBytesSentinel({"seed": 5})
        reference = sentinel.on_read(CTX, 0, offset + size)
        assert sentinel.on_read(CTX, offset, size) == reference[offset:]


class TestCounter:
    def test_lines(self):
        sentinel = CounterSentinel({"width": 3, "count": 4})
        assert sentinel.on_read(CTX, 0, 100) == b"000\n001\n002\n003\n"

    def test_start_offset(self):
        sentinel = CounterSentinel({"width": 2, "start": 7, "count": 2})
        assert sentinel.on_read(CTX, 0, 100) == b"07\n08\n"

    def test_mid_line_read(self):
        sentinel = CounterSentinel({"width": 3})
        assert sentinel.on_read(CTX, 2, 5) == b"0\n001"

    def test_size(self):
        assert CounterSentinel({"width": 3, "count": 5}).on_size(CTX) == 20
        assert CounterSentinel().on_size(CTX) == UNBOUNDED_SIZE

    def test_writes_rejected(self):
        with pytest.raises(UnsupportedOperationError):
            CounterSentinel().on_write(CTX, 0, b"x")


class TestSequence:
    def test_repeats(self):
        sentinel = SequenceSentinel({"pattern": "ab", "repeats": 3})
        assert sentinel.on_read(CTX, 0, 100) == b"ababab"
        assert sentinel.on_size(CTX) == 6

    def test_partial_period_read(self):
        sentinel = SequenceSentinel({"pattern": "xyz", "repeats": 4})
        assert sentinel.on_read(CTX, 2, 5) == b"zxyzx"

    def test_empty_pattern(self):
        sentinel = SequenceSentinel({"pattern": "", "repeats": 5})
        assert sentinel.on_read(CTX, 0, 10) == b""

    @given(offset=st.integers(0, 40), size=st.integers(0, 40))
    def test_property_matches_reference(self, offset, size):
        sentinel = SequenceSentinel({"pattern": "hello", "repeats": 8})
        reference = b"hello" * 8
        assert sentinel.on_read(CTX, offset, size) == reference[offset:offset + size]


class TestThroughFileApi:
    """Generated files behave like real files to applications."""

    def test_endless_file_streams(self, make_active):
        path = make_active("repro.sentinels.generate:RandomBytesSentinel",
                           params={"seed": 9}, meta={"data": "memory"})
        with open_active(path, "rb", strategy="thread") as stream:
            chunk1 = stream.read(1000)
            chunk2 = stream.read(1000)
            assert len(chunk1) == len(chunk2) == 1000
            assert chunk1 != chunk2

    def test_getsize_on_endless_file(self, make_active):
        path = make_active("repro.sentinels.generate:RandomBytesSentinel",
                           meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc") as stream:
            assert stream.getsize() == UNBOUNDED_SIZE

    def test_finite_counter_readlines(self, make_active):
        path = make_active("repro.sentinels.generate:CounterSentinel",
                           params={"width": 2, "count": 3},
                           meta={"data": "memory"})
        import io

        with io.BufferedReader(open_active(path, "rb", strategy="inproc")) as b:
            assert list(b) == [b"00\n", b"01\n", b"02\n"]
