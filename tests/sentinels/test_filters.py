"""Tests for filtering sentinels: null, compression, cipher, audit."""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Container, open_active
from repro.errors import UnsupportedOperationError

COMPRESS = "repro.sentinels.compress:CompressionSentinel"
CIPHER = "repro.sentinels.cipher:XorCipherSentinel"
AUDIT = "repro.sentinels.audit:AuditSentinel"


class TestCompression:
    def test_roundtrip(self, make_active):
        path = make_active(COMPRESS)
        body = b"compress me " * 100
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(body)
        with open_active(path, "rb", strategy="inproc") as stream:
            assert stream.read() == body

    def test_data_part_is_actually_compressed(self, make_active):
        path = make_active(COMPRESS)
        body = b"A" * 10000
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(body)
        stored = Container.load(path).data
        assert len(stored) < len(body) // 10
        assert stored[:4] == b"AFZ1"

    def test_client_unaware_through_interception(self, make_active):
        """Paper: 'the client application is completely unaware'."""
        from repro.core import MediatingConnector

        path = make_active(COMPRESS)
        with MediatingConnector(strategy="inproc"):
            with open(path, "w") as stream:
                stream.write("plain text view\n")
            with open(path) as stream:
                assert stream.read() == "plain text view\n"

    def test_random_access_read(self, make_active):
        path = make_active(COMPRESS, params={"chunk_size": 16})
        body = bytes(range(256)) * 4
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(body)
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.seek(100)
            assert stream.read(30) == body[100:130]
            assert stream.getsize() == len(body)

    def test_sparse_write_reads_zeros(self, make_active):
        path = make_active(COMPRESS, params={"chunk_size": 8})
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.seek(20)
            stream.write(b"end")
            stream.seek(0)
            assert stream.read() == b"\x00" * 20 + b"end"

    def test_truncate(self, make_active):
        path = make_active(COMPRESS, params={"chunk_size": 8})
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"0123456789abcdef")
            stream.truncate(10)
            stream.seek(0)
            assert stream.read() == b"0123456789"
        with open_active(path, "rb", strategy="inproc") as stream:
            assert stream.read() == b"0123456789"

    def test_ratio_control_op(self, make_active):
        path = make_active(COMPRESS)
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"z" * 4096)
            stream.flush()
            fields, _ = stream.control("ratio")
            assert fields["raw_size"] == 4096
            assert fields["stored_size"] < 256

    def test_different_chunk_sizes_interoperate_via_header(self, make_active):
        # chunk size is persisted in the header; reopening with other
        # params still reads the stored layout
        path = make_active(COMPRESS, params={"chunk_size": 4})
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"0123456789")
        # simulate reopening with a different default
        container = Container.load(path)
        sentinel = container.spec.instantiate()
        sentinel.chunk_size = 9999
        from repro.core.sentinel import SentinelContext
        from repro.core.datapart import MemoryDataPart

        ctx = SentinelContext(data=MemoryDataPart(container.data))
        sentinel.on_open(ctx)
        assert sentinel.chunk_size == 4
        assert sentinel.on_read(ctx, 0, 10) == b"0123456789"

    def test_corrupt_magic_rejected(self, make_active):
        from repro.errors import SentinelError

        path = make_active(COMPRESS)
        Container.load(path).write_data(b"garbage everywhere")
        with pytest.raises(SentinelError):
            open_active(path, "rb", strategy="inproc")

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(body=st.binary(max_size=600),
           chunk_size=st.sampled_from([1, 7, 64]))
    def test_property_roundtrip(self, tmp_path, body, chunk_size):
        from repro.core import create_active

        path = tmp_path / f"c{chunk_size}-{len(body)}-{hash(body) % 997}.af"
        create_active(path, COMPRESS, params={"chunk_size": chunk_size},
                      exist_ok=True)
        with open_active(str(path), "w+b", strategy="inproc") as stream:
            stream.write(body)
            stream.seek(0)
            assert stream.read() == body


class TestCipher:
    def test_roundtrip(self, make_active):
        path = make_active(CIPHER, params={"key": "s3cret"})
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"attack at dawn")
        with open_active(path, "rb", strategy="inproc") as stream:
            assert stream.read() == b"attack at dawn"

    def test_data_part_is_ciphertext(self, make_active):
        path = make_active(CIPHER, params={"key": "s3cret"})
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"attack at dawn")
        assert Container.load(path).data != b"attack at dawn"

    def test_wrong_key_reads_garbage(self, make_active, tmp_path):
        path = make_active(CIPHER, params={"key": "right"})
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"plaintext!")
        ciphertext = Container.load(path).data
        from repro.core import create_active

        other = tmp_path / "wrongkey.af"
        create_active(other, CIPHER, params={"key": "wrong"}, data=ciphertext)
        with open_active(str(other), "rb", strategy="inproc") as stream:
            assert stream.read() != b"plaintext!"

    def test_missing_key_rejected(self, make_active):
        from repro.errors import SpecError

        path = make_active(CIPHER)
        with pytest.raises(SpecError):
            open_active(path, "rb", strategy="inproc")

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(body=st.binary(max_size=200), offset=st.integers(0, 64),
           key=st.text(min_size=1, max_size=12))
    def test_property_offset_roundtrip(self, tmp_path, body, offset, key):
        from repro.core import create_active

        path = tmp_path / f"x{offset}-{len(body)}.af"
        create_active(path, CIPHER, params={"key": key}, exist_ok=True)
        with open_active(str(path), "w+b", strategy="inproc") as stream:
            stream.seek(offset)
            stream.write(body)
            stream.seek(offset)
            assert stream.read(len(body)) == body


class TestAudit:
    @pytest.fixture
    def audited(self, make_active, tmp_path):
        trail = tmp_path / "audit.jsonl"
        path = make_active(AUDIT, params={"audit_path": str(trail),
                                          "identity": "alice"},
                           data=b"sensitive")
        return path, trail

    def entries(self, trail):
        return [json.loads(line) for line in trail.read_text().splitlines()]

    def test_every_access_logged(self, audited):
        path, trail = audited
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.read(4)
            stream.write(b"!")
        events = [entry["event"] for entry in self.entries(trail)]
        assert events == ["open", "read", "write", "close"]

    def test_identity_recorded(self, audited):
        path, trail = audited
        with open_active(path, "rb", strategy="inproc") as stream:
            stream.read(1)
        assert all(entry["who"] == "alice" for entry in self.entries(trail))

    def test_deny_writes_policy(self, make_active, tmp_path):
        trail = tmp_path / "t.jsonl"
        path = make_active(AUDIT, params={"audit_path": str(trail),
                                          "deny_writes": True}, data=b"x")
        with open_active(path, "r+b", strategy="inproc") as stream:
            assert stream.read(1) == b"x"
            with pytest.raises(UnsupportedOperationError):
                stream.write(b"y")
        events = [entry["event"] for entry in self.entries(trail)]
        assert "write-denied" in events

    def test_deny_reads_policy(self, make_active, tmp_path):
        trail = tmp_path / "t.jsonl"
        path = make_active(AUDIT, params={"audit_path": str(trail),
                                          "deny_reads": True}, data=b"x")
        with open_active(path, "r+b", strategy="inproc") as stream:
            with pytest.raises(UnsupportedOperationError):
                stream.read(1)

    def test_trail_control_op(self, audited):
        path, trail = audited
        with open_active(path, "rb", strategy="inproc") as stream:
            stream.read(1)
            _, payload = stream.control("trail")
            assert b'"event":"read"' in payload

    def test_pass_through_preserves_data(self, audited):
        path, trail = audited
        with open_active(path, "r+b", strategy="inproc") as stream:
            assert stream.read() == b"sensitive"

    def test_missing_audit_path_rejected(self, make_active):
        from repro.errors import SpecError

        path = make_active(AUDIT)
        with pytest.raises(SpecError):
            open_active(path, "rb", strategy="inproc")

    def test_audit_across_strategies(self, make_active, tmp_path):
        trail = tmp_path / "multi.jsonl"
        path = make_active(AUDIT, params={"audit_path": str(trail)},
                           data=b"d")
        for strategy in ("inproc", "thread", "process-control"):
            with open_active(path, "rb", strategy=strategy) as stream:
                stream.read(1)
        opens = [entry for entry in self.entries(trail)
                 if entry["event"] == "open"]
        assert {entry["strategy"] for entry in opens} == \
            {"inproc", "thread", "process-control"}


class TestCompressionTruncateEdges:
    def test_truncate_to_zero_then_rewrite(self, make_active):
        path = make_active(COMPRESS, params={"chunk_size": 8})
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"0123456789abcdef")
            stream.truncate(0)
            assert stream.getsize() == 0
            stream.seek(0)
            stream.write(b"fresh")
            stream.seek(0)
            assert stream.read() == b"fresh"
        with open_active(path, "rb", strategy="inproc") as stream:
            assert stream.read() == b"fresh"

    def test_truncate_on_chunk_boundary(self, make_active):
        path = make_active(COMPRESS, params={"chunk_size": 8})
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"0123456789abcdef")  # exactly 2 chunks
            stream.truncate(8)
            stream.seek(0)
            assert stream.read() == b"01234567"
        with open_active(path, "rb", strategy="inproc") as stream:
            assert stream.read() == b"01234567"

    def test_truncate_then_extend_reads_zeros(self, make_active):
        path = make_active(COMPRESS, params={"chunk_size": 8})
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"0123456789")
            stream.truncate(4)
            stream.seek(10)
            stream.write(b"!")
            stream.seek(0)
            assert stream.read() == b"0123\x00\x00\x00\x00\x00\x00!"

    def test_grow_via_truncate(self, make_active):
        path = make_active(COMPRESS, params={"chunk_size": 8})
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"ab")
            stream.truncate(6)
            assert stream.getsize() == 6
            stream.seek(0)
            assert stream.read() == b"ab\x00\x00\x00\x00"
