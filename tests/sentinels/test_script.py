"""Tests for the embedded-source script sentinel."""

import pytest

from repro.core import Container, create_active, open_active
from repro.core.sandbox import SandboxPolicy, sandbox_spec
from repro.errors import SandboxViolation, SentinelError, SpecError
from repro.sentinels.script import ScriptSentinel, script_spec

UPPERCASE = """
def on_read(ctx, offset, size):
    return ctx.data.read_at(offset, size).upper()
"""

COUNTER = """
def on_read(ctx, offset, size):
    state.setdefault('reads', 0)
    state['reads'] += 1
    return ctx.data.read_at(offset, size)

def on_control(ctx, op, args, payload):
    return {'reads': state.get('reads', 0)}, b''
"""

PARAMETRIC = """
def on_read(ctx, offset, size):
    return (params['token'] * size)[:size].encode()
"""

GENERATOR = """
def generate(ctx):
    for i in range(int(params.get('n', 3))):
        yield ('line %d\\n' % i).encode()
"""


class TestScriptExecution:
    def test_uppercase_filter(self, make_active):
        path = make_active("repro.sentinels.script:ScriptSentinel",
                           params={"source": UPPERCASE},
                           data=b"quiet words")
        with open_active(path, "rb", strategy="inproc") as stream:
            assert stream.read() == b"QUIET WORDS"

    def test_state_persists_across_calls(self, make_active):
        path = make_active("repro.sentinels.script:ScriptSentinel",
                           params={"source": COUNTER}, data=b"abc")
        with open_active(path, "rb", strategy="inproc") as stream:
            stream.read(1)
            stream.read(1)
            fields, _ = stream.control("anything")
            assert fields["reads"] == 2

    def test_script_params_visible(self, make_active):
        path = make_active("repro.sentinels.script:ScriptSentinel",
                           params={"source": PARAMETRIC,
                                   "script_params": {"token": "ab"}},
                           meta={"data": "memory"})
        with open_active(path, "rb", strategy="inproc") as stream:
            assert stream.read(5) == b"ababa"

    def test_generator_script_under_stream_strategy(self, make_active):
        path = make_active("repro.sentinels.script:ScriptSentinel",
                           params={"source": GENERATOR,
                                   "script_params": {"n": 2}},
                           meta={"data": "memory"})
        with open_active(path, "rb", strategy="process") as stream:
            assert stream.read() == b"line 0\nline 1\n"

    def test_script_travels_with_copy(self, make_active, tmp_path):
        """The whole point: behaviour moves with the file."""
        source_path = make_active("repro.sentinels.script:ScriptSentinel",
                                  params={"source": UPPERCASE},
                                  data=b"portable")
        Container.load(source_path).copy_to(tmp_path / "moved.af")
        with open_active(tmp_path / "moved.af", "rb",
                         strategy="thread") as stream:
            assert stream.read() == b"PORTABLE"

    def test_script_spec_helper(self, tmp_path):
        spec = script_spec(UPPERCASE)
        create_active(tmp_path / "s.af", spec, data=b"x")
        with open_active(tmp_path / "s.af", "rb", strategy="inproc") as stream:
            assert stream.read() == b"X"

    def test_unhandled_ops_fall_back_to_null(self, make_active):
        path = make_active("repro.sentinels.script:ScriptSentinel",
                           params={"source": UPPERCASE}, data=b"abc")
        with open_active(path, "r+b", strategy="inproc") as stream:
            assert stream.getsize() == 3      # default on_size
            stream.write(b"Z")                 # default on_write
        assert Container.load(path).data == b"Zbc"


class TestScriptValidation:
    def test_missing_source(self):
        with pytest.raises(SpecError):
            ScriptSentinel({})

    def test_syntax_error(self):
        with pytest.raises(SpecError, match="does not parse"):
            ScriptSentinel({"source": "def on_read(:"})

    def test_no_handlers_defined(self):
        with pytest.raises(SpecError, match="no handler functions"):
            ScriptSentinel({"source": "x = 1"})

    def test_handler_exception_wrapped(self, make_active):
        path = make_active("repro.sentinels.script:ScriptSentinel",
                           params={"source": (
                               "def on_read(ctx, offset, size):\n"
                               "    raise ValueError('oops')\n")},
                           data=b"x")
        with open_active(path, "rb", strategy="inproc") as stream:
            with pytest.raises(SentinelError, match="oops"):
                stream.read(1)

    def test_non_bytes_read_result_rejected(self, make_active):
        path = make_active("repro.sentinels.script:ScriptSentinel",
                           params={"source": (
                               "def on_read(ctx, offset, size):\n"
                               "    return 42\n")}, data=b"x")
        with open_active(path, "rb", strategy="inproc") as stream:
            with pytest.raises(SentinelError, match="not bytes"):
                stream.read(1)

    def test_imports_unavailable_in_script(self):
        with pytest.raises((SpecError, SentinelError)):
            ScriptSentinel({"source": "import os\n"
                                      "def on_read(c, o, s):\n"
                                      "    return b''\n"})

    def test_open_unavailable_in_script(self, make_active):
        path = make_active("repro.sentinels.script:ScriptSentinel",
                           params={"source": (
                               "def on_read(ctx, offset, size):\n"
                               "    open('/etc/passwd')\n"
                               "    return b''\n")}, data=b"x")
        with open_active(path, "rb", strategy="inproc") as stream:
            with pytest.raises(SentinelError):
                stream.read(1)


class TestScriptPlusSandbox:
    def test_sandboxed_script(self, tmp_path):
        spec = sandbox_spec(script_spec(UPPERCASE),
                            SandboxPolicy(max_total_bytes=4))
        create_active(tmp_path / "boxed.af", spec, data=b"abcdefgh")
        with open_active(tmp_path / "boxed.af", "rb",
                         strategy="inproc") as stream:
            assert stream.read(4) == b"ABCD"
            with pytest.raises(SandboxViolation):
                stream.read(4)

    def test_script_through_child_process(self, tmp_path):
        """The embedded source executes inside the sentinel child."""
        create_active(tmp_path / "s.af", script_spec(UPPERCASE),
                      data=b"in the child")
        with open_active(tmp_path / "s.af", "rb",
                         strategy="process-control") as stream:
            assert stream.read() == b"IN THE CHILD"
