"""Tests for the versioning sentinel."""

import pytest

from repro.core import Container, open_active
from repro.errors import SentinelError

VERSIONED = "repro.sentinels.versioned:VersioningSentinel"


class TestBasicVersioning:
    def test_snapshot_on_close(self, make_active):
        path = make_active(VERSIONED)
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"draft one")
        with open_active(path, "r+b", strategy="inproc") as stream:
            fields, _ = stream.control("versions")
            assert len(fields["versions"]) == 1
            assert fields["versions"][0]["label"] == "close"

    def test_read_only_open_makes_no_snapshot(self, make_active):
        path = make_active(VERSIONED, data=b"stable")
        with open_active(path, "rb", strategy="inproc") as stream:
            assert stream.read() == b"stable"
        with open_active(path, "rb", strategy="inproc") as stream:
            fields, _ = stream.control("versions")
            assert fields["versions"] == []

    def test_restore_old_version(self, make_active):
        path = make_active(VERSIONED)
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"version one")
        with open_active(path, "w+b", strategy="inproc") as stream:
            stream.write(b"version two, replacing")
        with open_active(path, "r+b", strategy="inproc") as stream:
            assert stream.read() == b"version two, replacing"
            fields, _ = stream.control("restore", {"index": 0})
            assert fields["size"] == len(b"version one")
            stream.seek(0)
            assert stream.read() == b"version one"

    def test_peek_does_not_change_current(self, make_active):
        path = make_active(VERSIONED)
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"original")
        with open_active(path, "w+b", strategy="inproc") as stream:
            stream.write(b"modified")
            _, payload = stream.control("peek", {"index": 0})
            assert payload == b"original"
            stream.seek(0)
            assert stream.read() == b"modified"

    def test_manual_snapshot_with_label(self, make_active):
        path = make_active(VERSIONED)
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"milestone content")
            fields, _ = stream.control("snapshot", {"label": "v1.0"})
            assert fields["version"] == 0
            fields, _ = stream.control("versions")
            assert fields["versions"][0]["label"] == "v1.0"

    def test_max_versions_bounds_history(self, make_active):
        path = make_active(VERSIONED, params={"max_versions": 3})
        with open_active(path, "r+b", strategy="inproc") as stream:
            for index in range(6):
                stream.seek(0)
                stream.write(f"rev {index}".encode())
                stream.control("snapshot", {"label": f"s{index}"})
            fields, _ = stream.control("versions")
            labels = [entry["label"] for entry in fields["versions"]]
            assert labels == ["s3", "s4", "s5"]

    def test_bad_restore_index(self, make_active):
        path = make_active(VERSIONED)
        with open_active(path, "r+b", strategy="inproc") as stream:
            with pytest.raises(SentinelError):
                stream.control("restore", {"index": 7})

    def test_adopts_plain_data_part(self, make_active):
        path = make_active(VERSIONED, data=b"pre-existing plain bytes")
        with open_active(path, "rb", strategy="inproc") as stream:
            assert stream.read() == b"pre-existing plain bytes"

    def test_history_survives_reopen_and_copy(self, make_active, tmp_path):
        path = make_active(VERSIONED)
        with open_active(path, "r+b", strategy="inproc") as stream:
            stream.write(b"gen 1")
            stream.control("snapshot", {"label": "one"})
        Container.load(path).copy_to(tmp_path / "copy.af")
        with open_active(tmp_path / "copy.af", "r+b",
                         strategy="thread") as stream:
            fields, _ = stream.control("versions")
            assert [entry["label"] for entry in fields["versions"]] \
                == ["one", "close"]

    def test_works_through_child_process(self, make_active):
        path = make_active(VERSIONED)
        with open_active(path, "r+b", strategy="process-control") as stream:
            stream.write(b"remote child content")
            stream.control("snapshot", {"label": "from-child"})
        with open_active(path, "rb", strategy="inproc") as stream:
            fields, _ = stream.control("versions")
            labels = [entry["label"] for entry in fields["versions"]]
            assert "from-child" in labels


class TestValidation:
    def test_bad_max_versions(self):
        from repro.sentinels.versioned import VersioningSentinel

        with pytest.raises(SentinelError):
            VersioningSentinel({"max_versions": 0})

    def test_corrupt_header_rejected(self, make_active):
        path = make_active(VERSIONED)
        Container.load(path).write_data(b"AFV1" + (5).to_bytes(4, "big")
                                        + b"nope!")
        with pytest.raises(SentinelError):
            open_active(path, "rb", strategy="inproc")


class TestLargeReadChunking:
    def test_read_larger_than_frame_cap_via_child(self, make_active):
        """process-control reads above the 4 MiB chunk are reassembled."""
        big = bytes(1024) * (5 * 1024)  # 5 MiB of zeros
        path = make_active("repro.sentinels.null:NullFilterSentinel",
                           data=big)
        with open_active(path, "rb", strategy="process-control") as stream:
            data = stream.read()
        assert len(data) == len(big)
