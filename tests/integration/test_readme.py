"""The README's code blocks must actually run — docs are contracts."""

import re
import textwrap
from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[2] / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeCode:
    def test_readme_has_python_blocks(self):
        assert len(python_blocks()) >= 2

    def test_quickstart_block_runs(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)  # the block writes q2.af
        blocks = [b for b in python_blocks() if "open_active" in b]
        assert blocks, "README lost its quickstart block"
        exec(compile(blocks[0], "<README quickstart>", "exec"), {})
        out = capsys.readouterr().out
        assert "Q2 revenue" in out

    def test_sentinel_block_defines_working_sentinel(self, tmp_path):
        blocks = [b for b in python_blocks() if "ShoutingSentinel" in b]
        assert blocks, "README lost its custom-sentinel block"
        namespace: dict = {}
        exec(compile(blocks[0], "<README sentinel>", "exec"), namespace)
        sentinel_class = namespace["ShoutingSentinel"]

        from repro.core.datapart import MemoryDataPart
        from repro.core.sentinel import SentinelContext

        ctx = SentinelContext(data=MemoryDataPart(b"quiet"))
        assert sentinel_class().on_read(ctx, 0, 5) == b"QUIET"

    def test_ticker_block_runs(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)  # the block writes ticker.af
        blocks = [b for b in python_blocks() if "QuoteServer" in b]
        assert blocks, "README lost its live-ticker block"
        source = textwrap.dedent(blocks[0])  # the block sits in a bullet
        exec(compile(source, "<README ticker>", "exec"), {})
        out = capsys.readouterr().out
        assert "ACME" in out and "GLOBEX" in out, \
            "the peer open must see the refreshed quotes"
        assert "movement -> generation" in out, \
            "the subscriber must receive the fan-out record"

    def test_observability_block_runs(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)  # the block writes traced.af + jsonl
        blocks = [b for b in python_blocks() if "enable_tracing" in b]
        assert blocks, "README lost its observability block"
        exec(compile(blocks[0], "<README observability>", "exec"), {})
        out = capsys.readouterr().out
        assert "respawn" in out, "timeline must show the respawn span"
        assert "app.read" in out
        assert (tmp_path / "trace_spans.jsonl").exists()

        from repro.core.telemetry import TELEMETRY

        assert not TELEMETRY.tracing, "README block must restore the default"
        TELEMETRY.reset()

    def test_doctor_block_runs(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)  # the block writes diag.af + evidence/
        blocks = [b for b in python_blocks() if "doctor" in b]
        assert blocks, "README lost its doctor block"
        exec(compile(blocks[0], "<README doctor>", "exec"), {})
        out = capsys.readouterr().out
        assert "doctor:" in out, "doctor must print its verdict line"
        assert "doctor exit code: 0" in out
        assert (tmp_path / "evidence" / "snapshot.json").exists()
        assert (tmp_path / "evidence" / "meta.json").exists()

    def test_chaos_scenario_block_lints_clean(self):
        text = README.read_text()
        blocks = re.findall(r"```yaml\n(.*?)```", text, flags=re.DOTALL)
        assert blocks, "README lost its chaos scenario block"

        from repro.core.scenario import (
            lint_scenario,
            load_scenario,
            parse_scenario,
        )

        scenario = parse_scenario(load_scenario(blocks[0]))
        assert scenario.name == "kill-under-write-behind"
        assert lint_scenario(scenario) == []

    def test_commands_in_readme_exist(self):
        """Every afctl subcommand the README mentions is real."""
        from repro.cli import build_parser

        text = README.read_text()
        match = re.search(r"afctl ([a-z0-9|]+)", text)
        assert match
        parser = build_parser()
        subcommands = parser._subparsers._group_actions[0].choices
        for name in match.group(1).split("|"):
            assert name in subcommands, f"README mentions unknown afctl {name}"
