"""A whole-office scenario: many active files, one legacy toolchain.

Exercises the complete stack at once: quotes, registry, mail, logging,
remote documents and compression, all through one MediatingConnector,
with some opens running concurrently.  This is the paper's vision
statement as a test: a suite of dumb file-based tools becomes a
distributed application purely through the files it touches.
"""

import threading

import pytest

from repro.core import MediatingConnector, create_active
from repro.core.spec import SentinelSpec
from repro.net import (
    Address,
    FileServer,
    Network,
    Pop3Server,
    QuoteServer,
    RegistryServer,
    SmtpServer,
)
from repro.sentinels.compose import pipeline_spec


@pytest.fixture
def office(tmp_path):
    """The whole office: servers + a directory of active files."""
    network = Network()
    quotes = network.bind(Address("quotes", 7),
                          QuoteServer({"ACME": 100.0, "GLOBEX": 20.0}))
    registry = network.bind(Address("registry", 1), RegistryServer())
    registry.set_value(r"HKLM\Office", "Locale", "en-US")
    files = network.bind(Address("files", 445),
                         FileServer({"shared/handbook.txt":
                                     b"Rule 1: files are the interface.\n"}))
    pop3 = network.bind(Address("pop", 110), Pop3Server({"pat": "pw"}))
    smtp = network.bind(Address("smtp", 25), SmtpServer())
    smtp.register_domain("office.example", pop3)

    d = tmp_path / "desktop"
    d.mkdir()
    create_active(d / "ticker.af",
                  "repro.sentinels.quotes:StockQuoteSentinel",
                  params={"address": "quotes:7"}, meta={"data": "memory"})
    create_active(d / "settings.af",
                  "repro.sentinels.registryfs:RegistryFileSentinel",
                  params={"registry": "registry:1", "key": "HKLM"},
                  meta={"data": "memory"})
    create_active(d / "handbook.af",
                  "repro.sentinels.remotefile:RemoteFileSentinel",
                  params={"address": "files:445",
                          "path": "shared/handbook.txt",
                          "cache": "memory"},
                  meta={"data": "memory"})
    create_active(d / "outbox.af",
                  "repro.sentinels.mailbox:OutboxSentinel",
                  params={"smtp": "smtp:25", "sender": "pat@desk"},
                  meta={"data": "memory"})
    create_active(d / "activity.af",
                  "repro.sentinels.logfile:ConcurrentLogSentinel",
                  params={"stamp": False})
    create_active(d / "archive.af", pipeline_spec(
        SentinelSpec("repro.sentinels.compress:CompressionSentinel"),
        SentinelSpec("repro.sentinels.cipher:XorCipherSentinel",
                     {"key": "office"}),
    ))
    return network, d, {"quotes": quotes, "registry": registry,
                        "files": files, "pop3": pop3, "smtp": smtp}


def test_legacy_toolchain_runs_the_office(office):
    network, desk, servers = office

    # "legacy tools": every one of these only opens/reads/writes files
    def tool_cat(path):
        with open(path) as stream:
            return stream.read()

    def tool_append(path, line):
        with open(path, "a") as stream:
            stream.write(line + "\n")

    def tool_overwrite(path, text):
        with open(path, "w") as stream:
            stream.write(text)

    with MediatingConnector(network=network, strategy="inproc"):
        # 1. the morning dashboard
        ticker = tool_cat(desk / "ticker.af")
        assert "ACME\t100.0" in ticker
        tool_append(desk / "activity.af", "checked ticker")

        # 2. read the shared handbook (remote file, cached)
        handbook = tool_cat(desk / "handbook.af")
        assert "files are the interface" in handbook
        tool_append(desk / "activity.af", "read handbook")

        # 3. fix a setting with a text editor
        settings = tool_cat(desk / "settings.af")
        tool_overwrite(desk / "settings.af",
                       settings.replace("en-US", "fr-FR"))
        tool_append(desk / "activity.af", "changed locale")

        # 4. archive the ticker snapshot, encrypted+compressed
        tool_overwrite(desk / "archive.af", ticker * 50)

        # 5. send the day's summary by writing a file
        tool_overwrite(desk / "outbox.af",
                       "To: pat@office.example\nSubject: daily summary\n\n"
                       + tool_cat(desk / "activity.af"))

    # verify every side effect landed in the right distributed system
    assert servers["registry"].get_value(r"HKLM\Office", "Locale") \
        == ("REG_SZ", "fr-FR")
    assert servers["pop3"].message_count("pat") == 1
    from repro.core import Container

    log_lines = Container.load(desk / "activity.af").data.decode().splitlines()
    assert log_lines == ["checked ticker", "read handbook", "changed locale"]
    archive_on_disk = Container.load(desk / "archive.af").data
    assert b"ACME" not in archive_on_disk  # encrypted
    with MediatingConnector(network=network, strategy="inproc"):
        restored = open(desk / "archive.af").read()
    assert "ACME\t100.0" in restored


def test_concurrent_desk_sessions(office):
    """Three 'users' hammer the same desk concurrently."""
    network, desk, servers = office
    errors = []

    def user(tag, strategy):
        try:
            with MediatingConnector():  # nested installs are per-connector
                pass
        except Exception:
            pass
        try:
            from repro.core import open_active

            for i in range(5):
                with open_active(desk / "activity.af", "r+b",
                                 strategy=strategy) as stream:
                    stream.write(f"{tag}:{i}".encode())
                with open_active(desk / "ticker.af", "rb",
                                 strategy=strategy,
                                 network=network) as stream:
                    assert b"ACME" in stream.read()
        except Exception as exc:  # pragma: no cover
            errors.append((tag, exc))

    threads = [
        threading.Thread(target=user, args=("u1", "inproc")),
        threading.Thread(target=user, args=("u2", "thread")),
        threading.Thread(target=user, args=("u3", "inproc")),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    from repro.core import Container

    records = Container.load(desk / "activity.af").data.splitlines()
    assert len(records) == 15
    for tag in ("u1", "u2", "u3"):
        own = [r for r in records if r.startswith(tag.encode())]
        assert own == [f"{tag}:{i}".encode() for i in range(5)]
