"""End-to-end integration scenarios across the whole native stack.

Each test is one of the paper's motivating stories, executed with real
sentinel child processes, the interception layer, and the simulated
network together.
"""

import threading

import pytest

from repro.core import (
    Container,
    MediatingConnector,
    Win32Api,
    create_active,
    open_active,
)
from repro.net import (
    Address,
    FileServer,
    KeyValueStore,
    Network,
    Pop3Server,
    QuoteServer,
    SmtpServer,
)
from repro.net.pop3 import MailMessage


class TestSearchApplicationStory:
    """The intro's search example: an app scanning distributed databases
    must see changes while it runs — impossible with a passive snapshot,
    natural with an active file."""

    def test_search_sees_database_changes_between_passes(self, tmp_path):
        network = Network()
        store = network.bind(Address("db", 1), KeyValueStore({
            "doc:1": b"the quick brown fox",
            "doc:2": b"jumped over the moon",
        }))
        path = tmp_path / "corpus.af"
        create_active(path, "repro.sentinels.aggregate:AggregateSentinel",
                      params={"sources": [
                          {"kind": "kv", "address": "db:1",
                           "keys": ["doc:1", "doc:2", "doc:3"]},
                      ]}, meta={"data": "memory"})

        def legacy_search(filename, needle):
            with open(filename) as stream:
                return needle in stream.read()

        with MediatingConnector(network=network):
            assert not legacy_search(str(path), "lazy dog")
            store.put("doc:3", b"over the lazy dog")  # a writer elsewhere
            assert legacy_search(str(path), "lazy dog")


class TestChildProcessFullStack:
    """Real sentinel subprocess + network bridge + caching together."""

    def test_cached_remote_file_through_child_process(self, tmp_path):
        network = Network()
        server = network.bind(Address("files", 1),
                              FileServer({"big.bin": bytes(range(256)) * 16}))
        path = tmp_path / "proxy.af"
        create_active(path, "repro.sentinels.remotefile:RemoteFileSentinel",
                      params={"address": "files:1", "path": "big.bin",
                              "cache": "memory", "block_size": 256},
                      meta={"data": "memory"})
        with open_active(path, "r+b", strategy="process-control",
                         network=network) as stream:
            assert stream.read(16) == bytes(range(16))
            stream.seek(0)
            stream.read(16)  # cache hit inside the child
            fields, _ = stream.control("cache_stats")
            assert fields["hits"] >= 1
            stream.seek(1024)
            stream.write(b"\xff" * 8)
        assert server.get_file("big.bin")[1024:1032] == b"\xff" * 8

    def test_two_child_processes_share_one_origin(self, tmp_path):
        network = Network()
        server = network.bind(Address("files", 1),
                              FileServer({"shared.txt": b"0" * 64}))
        path = tmp_path / "shared.af"
        create_active(path, "repro.sentinels.remotefile:RemoteFileSentinel",
                      params={"address": "files:1", "path": "shared.txt"},
                      meta={"data": "memory"})
        a = open_active(path, "r+b", strategy="process-control",
                        network=network)
        b = open_active(path, "r+b", strategy="process-control",
                        network=network)
        try:
            a.write(b"AAAA")
            b.seek(0)
            assert b.read(4) == b"AAAA"  # no cache: b sees a's write
        finally:
            a.close()
            b.close()


class TestWin32VeneerOverDistributedFiles:
    """Legacy Win32-style code against remote-backed active files."""

    def test_handle_api_against_quotes(self, tmp_path):
        network = Network()
        network.bind(Address("q", 7), QuoteServer({"ACME": 55.0}))
        path = tmp_path / "quotes.af"
        create_active(path, "repro.sentinels.quotes:StockQuoteSentinel",
                      params={"address": "q:7"}, meta={"data": "memory"})
        api = Win32Api(network=network, strategy="thread")
        handle = api.CreateFile(str(path), "rb")
        body = api.ReadFile(handle, api.GetFileSize(handle))
        api.CloseHandle(handle)
        assert body == b"ACME\t55.0\n"


class TestMailRoundTrip:
    def test_outbox_to_inbox_through_relay(self, tmp_path):
        network = Network()
        pop3 = network.bind(Address("pop", 110), Pop3Server({"sam": "pw"}))
        smtp = network.bind(Address("smtp", 25), SmtpServer())
        smtp.register_domain("corp.example", pop3)

        outbox = tmp_path / "outbox.af"
        create_active(outbox, "repro.sentinels.mailbox:OutboxSentinel",
                      params={"smtp": "smtp:25", "sender": "sam@laptop"},
                      meta={"data": "memory"})
        inbox = tmp_path / "inbox.af"
        create_active(inbox, "repro.sentinels.mailbox:InboxSentinel",
                      params={"accounts": [
                          {"address": "pop:110", "user": "sam",
                           "password": "pw"},
                      ]}, meta={"data": "memory"})

        with MediatingConnector(network=network):
            with open(outbox, "w") as stream:
                stream.write("To: sam@corp.example\nSubject: note to self\n"
                             "\nremember the milk")
            with open(inbox) as stream:
                body = stream.read()
        assert "Subject: note to self" in body
        assert "remember the milk" in body


class TestCopySemanticsEndToEnd:
    """§2.1: copying an active file copies behaviour, not a snapshot."""

    def test_copied_generator_still_generates(self, tmp_path):
        source = tmp_path / "gen.af"
        create_active(source, "repro.sentinels.generate:CounterSentinel",
                      params={"width": 2, "count": 3},
                      meta={"data": "memory"})
        Container.load(source).copy_to(tmp_path / "gen-copy.af")
        with open_active(tmp_path / "gen-copy.af", "rb") as stream:
            assert stream.read() == b"00\n01\n02\n"

    def test_copied_cipher_file_decrypts_with_same_key(self, tmp_path):
        source = tmp_path / "vault.af"
        create_active(source, "repro.sentinels.cipher:XorCipherSentinel",
                      params={"key": "swordfish"})
        with open_active(source, "wb", strategy="inproc") as stream:
            stream.write(b"the combination is 1234")
        Container.load(source).copy_to(tmp_path / "vault-copy.af")
        with open_active(tmp_path / "vault-copy.af", "rb",
                         strategy="inproc") as stream:
            assert stream.read() == b"the combination is 1234"


class TestConcurrencyAcrossStrategies:
    def test_mixed_strategy_log_writers_under_contention(self, tmp_path):
        path = tmp_path / "log.af"
        create_active(path, "repro.sentinels.logfile:ConcurrentLogSentinel",
                      params={"stamp": False})
        errors = []

        def writer(tag, strategy):
            try:
                with open_active(path, "r+b", strategy=strategy) as stream:
                    for i in range(10):
                        stream.write(f"{tag}:{i}".encode())
            except Exception as exc:  # pragma: no cover
                errors.append((tag, exc))

        threads = [
            threading.Thread(target=writer, args=("inp", "inproc")),
            threading.Thread(target=writer, args=("thr", "thread")),
            threading.Thread(target=writer, args=("prc", "process-control")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        records = Container.load(path).data.splitlines()
        assert len(records) == 30
        for tag in ("inp", "thr", "prc"):
            own = [r for r in records if r.startswith(tag.encode())]
            assert own == [f"{tag}:{i}".encode() for i in range(10)]


class TestFailureScenarios:
    def test_network_partition_then_heal_mid_session(self, tmp_path):
        network = Network()
        network.bind(Address("files", 1), FileServer({"f": b"live data"}))
        path = tmp_path / "p.af"
        create_active(path, "repro.sentinels.remotefile:RemoteFileSentinel",
                      params={"address": "files:1", "path": "f"},
                      meta={"data": "memory"})
        with open_active(path, "rb", strategy="thread",
                         network=network) as stream:
            assert stream.read(4) == b"live"
            network.partition(Address("files", 1))
            with pytest.raises(Exception):
                stream.seek(0)
                stream.read(4)
            network.heal(Address("files", 1))
            stream.seek(0)
            assert stream.read(4) == b"live"

    def test_sentinel_exception_does_not_poison_session(self, tmp_path):
        path = tmp_path / "x.af"
        create_active(path, "repro.sentinels.generate:RandomBytesSentinel",
                      params={"seed": 1}, meta={"data": "memory"})
        from repro.errors import UnsupportedOperationError

        with open_active(path, "r+b", strategy="thread") as stream:
            with pytest.raises(UnsupportedOperationError):
                stream.write(b"read-only!")  # sentinel raises
            assert len(stream.read(8)) == 8  # session still serves

    def test_memory_cache_not_shared_between_opens(self, tmp_path):
        """Each open gets its own sentinel, hence its own memory cache."""
        network = Network()
        server = network.bind(Address("files", 1),
                              FileServer({"f": b"version-A....."}))
        path = tmp_path / "c.af"
        create_active(path, "repro.sentinels.remotefile:RemoteFileSentinel",
                      params={"address": "files:1", "path": "f",
                              "cache": "memory"},
                      meta={"data": "memory"})
        a = open_active(path, "rb", strategy="inproc", network=network)
        assert a.read(9) == b"version-A"
        server.put_file("f", b"version-B.....")
        b = open_active(path, "rb", strategy="inproc", network=network)
        try:
            assert b.read(9) == b"version-B"   # fresh sentinel, fresh cache
            a.seek(0)
            assert a.read(9) == b"version-A"   # stale by configuration
        finally:
            a.close()
            b.close()


class TestStreamStrategyWithNetwork:
    """The simple process strategy (bare pipes) + the network bridge."""

    def test_generator_sentinel_over_bridge(self, tmp_path):
        """A stream sentinel in a child process pulls from the parent's
        simulated network through the bridge, pipes the result to the
        app — the full §4.1 picture with a live remote source."""
        network = Network()
        network.bind(Address("files", 1),
                     FileServer({"feed.txt": b"streamed from afar"}))
        path = tmp_path / "feed.af"
        create_active(path, "repro.sentinels.remotefile:RemoteFileSentinel",
                      params={"address": "files:1", "path": "feed.txt"},
                      meta={"data": "memory"})
        with open_active(path, "rb", strategy="process",
                         network=network) as stream:
            assert stream.read() == b"streamed from afar"

    def test_stream_write_distributes_over_bridge(self, tmp_path):
        network = Network()
        server = network.bind(Address("collector", 1), FileServer())
        path = tmp_path / "sink.af"
        create_active(path, "repro.sentinels.distribute:DistributionSentinel",
                      params={"targets": [
                          {"kind": "fileserver", "address": "collector:1",
                           "path": "remote.log"},
                      ]}, meta={"data": "memory"})
        with open_active(path, "r+b", strategy="process",
                         network=network) as stream:
            stream.write(b"pushed through bare pipes")
        assert server.get_file("remote.log") == b"pushed through bare pipes"
