"""Every example script must run clean — they are executable docs."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

QUICK_EXAMPLES = [
    "quickstart.py",
    "remote_mount.py",
    "distributed_log.py",
    "stock_dashboard.py",
    "mail_client.py",
    "registry_editor.py",
    "portable_script.py",
    "critical_path.py",
    "versioned_notes.py",
]


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=240,
    )


@pytest.mark.parametrize("script", QUICK_EXAMPLES)
def test_example_runs_clean(script):
    result = run_example(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example narrates what it did


def test_figure6_example_reduced():
    result = run_example("figure6_repro.py", "--calls", "120")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Every qualitative claim" in result.stdout


class TestExampleContent:
    """Spot-check that the narrations show the paper's punchlines."""

    def test_quickstart_shows_compression_win(self):
        out = run_example("quickstart.py").stdout
        assert "compression filter" in out
        assert "legacy app counted" in out

    def test_remote_mount_shows_consistency(self):
        out = run_example("remote_mount.py").stdout
        assert "after remote update" in out
        assert "restated" in out

    def test_critical_path_shows_all_strategies(self):
        out = run_example("critical_path.py").stdout
        for strategy in ("process-control", "thread", "dll"):
            assert f"=== {strategy}:" in out
        assert "context switches" in out
