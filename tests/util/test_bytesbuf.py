"""Unit and property tests for :mod:`repro.util.bytesbuf`."""

import pytest
from hypothesis import given, strategies as st

from repro.util.bytesbuf import ByteBuffer


class TestBasics:
    def test_empty(self):
        buf = ByteBuffer()
        assert len(buf) == 0
        assert buf.size == 0
        assert buf.getvalue() == b""

    def test_initial_contents(self):
        buf = ByteBuffer(b"hello")
        assert buf.getvalue() == b"hello"
        assert buf.size == 5

    def test_read_within(self):
        buf = ByteBuffer(b"hello world")
        assert buf.read_at(0, 5) == b"hello"
        assert buf.read_at(6, 5) == b"world"

    def test_read_past_end_is_short(self):
        buf = ByteBuffer(b"abc")
        assert buf.read_at(1, 100) == b"bc"
        assert buf.read_at(3, 10) == b""
        assert buf.read_at(50, 10) == b""

    def test_read_zero_bytes(self):
        assert ByteBuffer(b"abc").read_at(0, 0) == b""

    def test_write_overwrite(self):
        buf = ByteBuffer(b"hello world")
        assert buf.write_at(6, b"WORLD") == 5
        assert buf.getvalue() == b"hello WORLD"

    def test_write_extends(self):
        buf = ByteBuffer(b"ab")
        buf.write_at(1, b"xyz")
        assert buf.getvalue() == b"axyz"

    def test_write_past_end_zero_fills(self):
        buf = ByteBuffer(b"ab")
        buf.write_at(5, b"z")
        assert buf.getvalue() == b"ab\x00\x00\x00z"

    def test_append_returns_offset(self):
        buf = ByteBuffer(b"abc")
        assert buf.append(b"def") == 3
        assert buf.append(b"!") == 6
        assert buf.getvalue() == b"abcdef!"

    def test_truncate_shrinks(self):
        buf = ByteBuffer(b"abcdef")
        buf.truncate(2)
        assert buf.getvalue() == b"ab"

    def test_truncate_extends_with_zeros(self):
        buf = ByteBuffer(b"ab")
        buf.truncate(4)
        assert buf.getvalue() == b"ab\x00\x00"

    def test_truncate_to_zero_default(self):
        buf = ByteBuffer(b"abcdef")
        buf.truncate()
        assert buf.getvalue() == b""

    def test_setvalue_replaces(self):
        buf = ByteBuffer(b"old")
        buf.setvalue(b"brand new")
        assert buf.getvalue() == b"brand new"

    def test_equality(self):
        assert ByteBuffer(b"x") == ByteBuffer(b"x")
        assert ByteBuffer(b"x") == b"x"
        assert ByteBuffer(b"x") != ByteBuffer(b"y")

    @pytest.mark.parametrize("method,args", [
        ("read_at", (-1, 4)),
        ("read_at", (0, -4)),
        ("write_at", (-1, b"x")),
        ("truncate", (-1,)),
    ])
    def test_negative_arguments_rejected(self, method, args):
        buf = ByteBuffer(b"abc")
        with pytest.raises(ValueError):
            getattr(buf, method)(*args)


class TestProperties:
    @given(st.binary(max_size=256), st.integers(0, 300), st.binary(max_size=64))
    def test_write_then_read_roundtrip(self, initial, offset, data):
        buf = ByteBuffer(initial)
        buf.write_at(offset, data)
        assert buf.read_at(offset, len(data)) == data

    @given(st.binary(max_size=128), st.integers(0, 200), st.binary(max_size=64))
    def test_size_after_write(self, initial, offset, data):
        buf = ByteBuffer(initial)
        buf.write_at(offset, data)
        assert buf.size == max(len(initial), offset + len(data))

    @given(st.lists(st.binary(min_size=1, max_size=32), max_size=16))
    def test_appends_concatenate(self, chunks):
        buf = ByteBuffer()
        for chunk in chunks:
            buf.append(chunk)
        assert buf.getvalue() == b"".join(chunks)

    @given(st.binary(max_size=128), st.integers(0, 160))
    def test_truncate_then_size(self, initial, size):
        buf = ByteBuffer(initial)
        buf.truncate(size)
        assert buf.size == size

    @given(st.binary(max_size=128), st.integers(0, 140), st.integers(0, 140))
    def test_reads_never_mutate(self, initial, offset, size):
        buf = ByteBuffer(initial)
        before = buf.getvalue()
        buf.read_at(offset, size)
        assert buf.getvalue() == before
