"""Unit tests for the extracted YAML-subset parser."""

import pytest

from repro.util import yamlite
from repro.util.yamlite import YamliteError


class TestScalars:
    @pytest.mark.parametrize("token,expected", [
        ("42", 42),
        ("-3", -3),
        ("2.5", 2.5),
        ("true", True),
        ("false", False),
        ("null", None),
        ("~", None),
        ("'quoted'", "quoted"),
        ('"double"', "double"),
        ("bare string", "bare string"),
        ("1.2.3", "1.2.3"),
    ])
    def test_scalar_coercion(self, token, expected):
        assert yamlite.loads(f"key: {token}")["key"] == expected

    def test_empty_value_is_null(self):
        assert yamlite.loads("key:")["key"] is None


class TestStructure:
    def test_nested_maps(self):
        doc = yamlite.loads(
            "outer:\n"
            "  inner:\n"
            "    leaf: 1\n"
            "  sibling: 2\n")
        assert doc == {"outer": {"inner": {"leaf": 1}, "sibling": 2}}

    def test_list_of_scalars(self):
        doc = yamlite.loads("items:\n  - a\n  - 2\n  - true\n")
        assert doc == {"items": ["a", 2, True]}

    def test_list_of_mappings_inline_key(self):
        doc = yamlite.loads(
            "rules:\n"
            "  - name: first\n"
            "    weight: 1\n"
            "  - name: second\n"
            "    weight: 2\n")
        assert doc["rules"] == [{"name": "first", "weight": 1},
                                {"name": "second", "weight": 2}]

    def test_comments_and_blank_lines_skipped(self):
        doc = yamlite.loads(
            "# leading comment\n"
            "\n"
            "key: value  # trailing comment\n")
        assert doc == {"key": "value"}

    def test_hash_inside_quotes_is_not_a_comment(self):
        doc = yamlite.loads("key: 'a # b'\n")
        assert doc["key"] == "a # b"

    def test_json_document_passthrough(self):
        assert yamlite.loads('{"a": [1, 2], "b": null}') == \
            {"a": [1, 2], "b": None}


class TestErrors:
    def test_empty_document(self):
        with pytest.raises(YamliteError, match="empty document"):
            yamlite.loads("   \n# only a comment\n")

    def test_tab_indentation_rejected(self):
        with pytest.raises(YamliteError, match="tabs"):
            yamlite.loads("outer:\n\tinner: 1\n")

    def test_bad_json_rejected(self):
        with pytest.raises(YamliteError, match="invalid JSON"):
            yamlite.loads('{"unterminated": ')

    def test_missing_colon(self):
        with pytest.raises(YamliteError):
            yamlite.loads("just a bare line\n")

    def test_inconsistent_dedent_is_trailing_content(self):
        with pytest.raises(YamliteError, match="trailing content"):
            yamlite.loads("  indented: 1\nouter: 2\n")

    def test_sequence_item_in_mapping(self):
        with pytest.raises(YamliteError, match="sequence item"):
            yamlite.loads("key: 1\n- stray\n")
