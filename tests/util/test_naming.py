"""Tests for deterministic name generation."""

import threading

from repro.util.naming import monotonic_name, reset_names


class TestMonotonicName:
    def test_counts_per_prefix(self):
        reset_names()
        assert monotonic_name("alpha") == "alpha-0"
        assert monotonic_name("alpha") == "alpha-1"
        assert monotonic_name("beta") == "beta-0"

    def test_thread_safe_uniqueness(self):
        reset_names()
        names = []
        lock = threading.Lock()

        def worker():
            local = [monotonic_name("con") for _ in range(200)]
            with lock:
                names.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(names)) == 800

    def test_reset(self):
        reset_names()
        monotonic_name("x")
        reset_names()
        assert monotonic_name("x") == "x-0"
