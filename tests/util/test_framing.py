"""Tests for length-prefixed framing over byte streams."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.errors import ChannelClosedError, FrameError
from repro.util.framing import MAX_FRAME, read_exact, read_frame, write_frame


class TestReadExact:
    def test_reads_exactly(self):
        stream = io.BytesIO(b"abcdef")
        assert read_exact(stream, 4) == b"abcd"
        assert read_exact(stream, 2) == b"ef"

    def test_eof_mid_read_raises(self):
        stream = io.BytesIO(b"ab")
        with pytest.raises(ChannelClosedError):
            read_exact(stream, 5)

    def test_zero_size(self):
        assert read_exact(io.BytesIO(b""), 0) == b""

    def test_assembles_across_short_reads(self):
        class Dribble(io.RawIOBase):
            def __init__(self, data):
                self.data = data
                self.pos = 0

            def read(self, size=-1):
                if self.pos >= len(self.data):
                    return b""
                chunk = self.data[self.pos:self.pos + 1]
                self.pos += 1
                return chunk

        assert read_exact(Dribble(b"hello"), 5) == b"hello"


class TestFrames:
    def test_roundtrip(self):
        stream = io.BytesIO()
        write_frame(stream, b"payload")
        stream.seek(0)
        assert read_frame(stream) == b"payload"

    def test_empty_frame(self):
        stream = io.BytesIO()
        write_frame(stream, b"")
        stream.seek(0)
        assert read_frame(stream) == b""

    def test_multiple_frames_in_order(self):
        stream = io.BytesIO()
        for body in (b"one", b"two", b"three"):
            write_frame(stream, body)
        stream.seek(0)
        assert [read_frame(stream) for _ in range(3)] == [b"one", b"two", b"three"]

    def test_eof_at_boundary_raises_channel_closed(self):
        with pytest.raises(ChannelClosedError):
            read_frame(io.BytesIO(b""))

    def test_truncated_header_raises(self):
        with pytest.raises(ChannelClosedError):
            read_frame(io.BytesIO(b"\x00\x00"))

    def test_truncated_body_raises(self):
        stream = io.BytesIO()
        write_frame(stream, b"abcdef")
        truncated = io.BytesIO(stream.getvalue()[:-3])
        with pytest.raises(ChannelClosedError):
            read_frame(truncated)

    def test_oversize_outgoing_rejected(self):
        with pytest.raises(FrameError):
            write_frame(io.BytesIO(), b"x" * (MAX_FRAME + 1))

    def test_oversize_incoming_rejected(self):
        header = (MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(FrameError):
            read_frame(io.BytesIO(header))

    @given(st.lists(st.binary(max_size=512), min_size=1, max_size=20))
    def test_property_roundtrip_sequences(self, bodies):
        stream = io.BytesIO()
        for body in bodies:
            write_frame(stream, body)
        stream.seek(0)
        assert [read_frame(stream) for _ in bodies] == bodies
